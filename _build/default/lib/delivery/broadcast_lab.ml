open Sim

type strategy =
  | Direct
  | Tree of { fanout : int }
  | Erasure of { k : int }

type result = {
  honest : int;
  delivered : int;
  completion : Sim_time.span option;
  source_egress : int;
  max_replica_egress : int;
  total_bytes : int;
  decode_failures : int;
}

type msg =
  | Full of { payload : string }
  | Fragment of Crypto.Reed_solomon.fragment

let overhead = 48 (* framing + signature, as in the protocol messages *)

let wire_size = function
  | Full { payload } -> String.length payload + overhead
  | Fragment f -> Bytes.length f.Crypto.Reed_solomon.data + overhead

let meta =
  Net.Network.
    { size = wire_size; category = (fun _ -> "delivery"); priority = (fun _ -> Net.Nic.Low) }

(* Tree shape: replicas in id order form a complete fanout-ary tree
   rooted at the source (id 0): children of tree position p are
   fanout*p + 1 .. fanout*p + fanout. *)
let tree_children ~n ~fanout p =
  List.filter (fun c -> c < n) (List.init fanout (fun i -> (fanout * p) + 1 + i))

let run ?(seed = 7L) ?(link = Net.Network.default_link) ~n ~payload ~byzantine strategy =
  assert (n >= 2 && String.length payload > 0);
  let engine = Engine.create ~seed () in
  let network = Net.Network.create engine ~n ~meta ~link in
  let source = 0 in
  let is_byz id = List.mem id byzantine in
  assert (not (is_byz source));
  let delivered_at = Array.make n None in
  let decode_failures = ref 0 in
  let deliver id =
    if delivered_at.(id) = None then delivered_at.(id) <- Some (Engine.now engine)
  in
  deliver source;
  (match strategy with
   | Direct ->
     for id = 0 to n - 1 do
       Net.Network.set_handler network id (fun ~src:_ m ->
           match m with
           | Full _ -> if not (is_byz id) then deliver id
           | Fragment _ -> ())
     done;
     Net.Network.multicast network ~src:source (Full { payload })
   | Tree { fanout } ->
     assert (fanout >= 1);
     for id = 0 to n - 1 do
       Net.Network.set_handler network id (fun ~src:_ m ->
           match m with
           | Full _ ->
             if not (is_byz id) then begin
               deliver id;
               (* honest relays forward to their children; Byzantine
                  inner nodes silently sever their subtree *)
               List.iter
                 (fun child -> Net.Network.send network ~src:id ~dst:child m)
                 (tree_children ~n ~fanout id)
             end
           | Fragment _ -> ())
     done;
     List.iter
       (fun child -> Net.Network.send network ~src:source ~dst:child (Full { payload }))
       (tree_children ~n ~fanout source)
   | Erasure { k } ->
     assert (1 <= k && k <= n - 1);
     let fragments = Crypto.Reed_solomon.encode ~k ~n:(n - 1) payload in
     let collected : (int, Crypto.Reed_solomon.fragment list ref) Hashtbl.t = Hashtbl.create n in
     let got id =
       match Hashtbl.find_opt collected id with
       | Some r -> r
       | None ->
         let r = ref [] in
         Hashtbl.add collected id r;
         r
     in
     let try_decode id =
       if delivered_at.(id) = None then begin
         let frags = !(got id) in
         if List.length (List.sort_uniq compare (List.map (fun f -> f.Crypto.Reed_solomon.index) frags)) >= k
         then
           match Crypto.Reed_solomon.decode ~k ~len:(String.length payload) frags with
           | Some recovered when String.equal recovered payload -> deliver id
           | Some _ | None -> incr decode_failures
       end
     in
     for id = 0 to n - 1 do
       Net.Network.set_handler network id (fun ~src:_ m ->
           match m with
           | Fragment f ->
             if not (is_byz id) then begin
               let r = got id in
               let fresh =
                 not
                   (List.exists
                      (fun g -> g.Crypto.Reed_solomon.index = f.Crypto.Reed_solomon.index)
                      !r)
               in
               if fresh then begin
                 r := f :: !r;
                 (* first touch of our own fragment: rebroadcast it *)
                 if f.Crypto.Reed_solomon.index = id - 1 then
                   Net.Network.multicast network ~src:id m;
                 try_decode id
               end
             end
           | Full _ -> ())
     done;
     (* source keeps all fragments; each replica i gets fragment i-1 *)
     List.iteri
       (fun i frag ->
         Net.Network.send network ~src:source ~dst:(i + 1) (Fragment frag))
       fragments);
  Engine.run engine;
  let honest_ids = List.filter (fun id -> not (is_byz id)) (List.init n Fun.id) in
  let delivered = List.length (List.filter (fun id -> delivered_at.(id) <> None) honest_ids) in
  let completion =
    if delivered = List.length honest_ids then
      List.fold_left
        (fun acc id -> match delivered_at.(id) with Some t -> Sim_time.max acc t | None -> acc)
        Sim_time.zero honest_ids
      |> Option.some
    else None
  in
  let egress id = Net.Bandwidth.total (Net.Network.stats network id) Net.Bandwidth.Sent in
  let max_replica_egress =
    List.fold_left (fun acc id -> if id = source then acc else max acc (egress id)) 0
      (List.init n Fun.id)
  in
  { honest = List.length honest_ids;
    delivered;
    completion;
    source_egress = egress source;
    max_replica_egress;
    total_bytes = List.fold_left (fun acc id -> acc + egress id) 0 (List.init n Fun.id);
    decode_failures = !decode_failures }

let pp_result fmt r =
  Format.fprintf fmt "delivered %d/%d honest%s, source egress %dB, max replica egress %dB, total %dB"
    r.delivered r.honest
    (match r.completion with
     | Some t -> Printf.sprintf " in %.4fs" (Sim_time.to_sec t)
     | None -> " (incomplete)")
    r.source_egress r.max_replica_egress r.total_bytes
