let replicas_for ~n ~s ~leader ~key =
  assert (1 <= s && s <= n - 1);
  (* Non-leader replicas in ring order starting at a key-derived offset:
     deterministic, uniform over keys, and distinct by construction. *)
  let candidates = List.filter (fun r -> r <> leader) (List.init n Fun.id) in
  let arr = Array.of_list candidates in
  let len = Array.length arr in
  let h = Crypto.Hash.of_string (Printf.sprintf "assign:%d" key) in
  let start = Crypto.Field.to_int (Crypto.Field.of_string_digest (Crypto.Hash.raw h)) mod len in
  List.init s (fun i -> arr.((start + i) mod len))

let honest_hit_probability ~s ~f ~n =
  (* 1 - C(f, s) / C(n - 1, s): all s choices Byzantine among the n - 1
     non-leader candidates. Computed iteratively to avoid overflow. *)
  assert (0 <= f && f < n && 1 <= s && s <= n - 1);
  if s > f then 1.0
  else begin
    let ratio = ref 1.0 in
    for i = 0 to s - 1 do
      ratio := !ratio *. float_of_int (f - i) /. float_of_int (n - 1 - i)
    done;
    1.0 -. !ratio
  end
