(** The paper's μ(req) function (§4.1, datablock preparation).

    Maps a request (batch) deterministically to the [s] replicas
    responsible for disseminating it, always excluding the leader (which
    generates no datablocks). With [s = 1] request delivery repetition is
    minimal — the paper's recommended operating point; [s] up to [f + 1]
    defeats censorship by Byzantine replicas. *)

val replicas_for : n:int -> s:int -> leader:Net.Node_id.t -> key:int -> Net.Node_id.t list
(** [replicas_for ~n ~s ~leader ~key] is [s] distinct non-leader replicas
    chosen deterministically from [key]. Requires [1 <= s <= n - 1]. *)

val honest_hit_probability : s:int -> f:int -> n:int -> float
(** Probability that at least one of [s] uniformly chosen replicas is
    honest when [f] of [n - 1] candidates are Byzantine — the paper's
    "a small s = 9 is sufficient for 99.99%" claim, testable. *)
