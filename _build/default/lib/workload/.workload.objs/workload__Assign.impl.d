lib/workload/assign.ml: Array Crypto Fun List Printf
