lib/workload/generator.ml: Array Engine Net Request Sim Sim_time
