lib/workload/request.mli: Crypto Sim
