lib/workload/request.ml: Crypto Printf Sim
