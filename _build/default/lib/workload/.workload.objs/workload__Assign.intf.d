lib/workload/assign.mli: Net
