lib/workload/generator.mli: Net Request Sim
