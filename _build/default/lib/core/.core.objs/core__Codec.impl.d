lib/core/codec.ml: Bftblock Buffer Char Crypto Datablock Int64 List Msg Option String Workload
