lib/core/config.mli: Crypto Format Net Sim
