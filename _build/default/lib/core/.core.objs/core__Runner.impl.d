lib/core/runner.ml: Array Bftblock Byzantine Config Crypto Datablock Datablock_pool Engine Float Fun Hashtbl Int64 Ledger List Msg Net Replica Rng Sim Sim_time Stats Trace Workload
