lib/core/mempool.mli: Sim Workload
