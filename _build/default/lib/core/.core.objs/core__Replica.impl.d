lib/core/replica.ml: Array Bftblock Byzantine Config Crypto Datablock Datablock_pool Engine Hashtbl Int64 Ledger List Mempool Msg Net Printf Quorum Sim Sim_time Trace Workload
