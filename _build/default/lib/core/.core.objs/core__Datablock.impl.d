lib/core/datablock.ml: Array Crypto Format List Net Printf Sim Workload
