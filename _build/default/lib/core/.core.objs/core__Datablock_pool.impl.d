lib/core/datablock_pool.ml: Crypto Datablock Hashtbl List Net Option Queue
