lib/core/core.ml: Bftblock Byzantine Codec Config Datablock Datablock_pool Ledger Mempool Msg Quorum Replica Runner Scaling_factor
