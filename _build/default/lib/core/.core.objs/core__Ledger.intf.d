lib/core/ledger.mli: Bftblock
