lib/core/bftblock.mli: Crypto Format
