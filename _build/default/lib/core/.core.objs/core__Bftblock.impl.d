lib/core/bftblock.ml: Crypto Format List Printf
