lib/core/datablock.mli: Crypto Format Net Sim Workload
