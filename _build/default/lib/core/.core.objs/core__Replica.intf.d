lib/core/replica.mli: Bftblock Byzantine Config Crypto Datablock Datablock_pool Ledger Msg Net Sim Workload
