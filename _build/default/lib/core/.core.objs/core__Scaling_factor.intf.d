lib/core/scaling_factor.mli:
