lib/core/runner.mli: Byzantine Config Msg Net Replica Sim Stats Workload
