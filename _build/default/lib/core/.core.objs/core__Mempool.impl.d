lib/core/mempool.ml: List Queue Request Sim Workload
