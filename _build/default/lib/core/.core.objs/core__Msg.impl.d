lib/core/msg.ml: Bftblock Crypto Datablock Format List Net Printf String
