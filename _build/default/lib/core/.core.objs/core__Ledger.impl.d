lib/core/ledger.ml: Bftblock Hashtbl List
