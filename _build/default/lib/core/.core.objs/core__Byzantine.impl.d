lib/core/byzantine.ml: Format Sim
