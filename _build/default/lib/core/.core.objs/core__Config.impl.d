lib/core/config.ml: Crypto Format Option Sim Sim_time
