lib/core/byzantine.mli: Format Sim
