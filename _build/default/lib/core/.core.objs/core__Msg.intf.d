lib/core/msg.mli: Bftblock Crypto Datablock Format Net
