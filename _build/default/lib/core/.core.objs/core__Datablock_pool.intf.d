lib/core/datablock_pool.mli: Crypto Datablock Net
