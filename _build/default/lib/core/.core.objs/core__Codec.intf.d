lib/core/codec.mli: Bftblock Datablock Msg Workload
