lib/core/quorum.ml: Crypto List
