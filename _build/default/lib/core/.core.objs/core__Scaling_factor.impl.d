lib/core/scaling_factor.ml: Float List
