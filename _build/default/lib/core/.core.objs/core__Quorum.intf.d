lib/core/quorum.mli: Crypto
