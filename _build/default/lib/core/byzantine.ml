type t =
  | Honest
  | Silent
  | Equivocate_datablocks
  | Censor
  | Crash_at of Sim.Sim_time.t

let is_byzantine = function
  | Honest -> false
  | Silent | Equivocate_datablocks | Censor | Crash_at _ -> true

let pp fmt = function
  | Honest -> Format.pp_print_string fmt "honest"
  | Silent -> Format.pp_print_string fmt "silent"
  | Equivocate_datablocks -> Format.pp_print_string fmt "equivocator"
  | Censor -> Format.pp_print_string fmt "censor"
  | Crash_at at -> Format.fprintf fmt "crash@%a" Sim.Sim_time.pp at
