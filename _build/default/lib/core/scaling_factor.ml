let hotstuff_sf ~n = float_of_int (n - 1)

let leopard_leader_workload ~lambda ~alpha_bytes ~beta ~n =
  (lambda /. alpha_bytes *. beta *. float_of_int (n - 1)) +. lambda

let leopard_nonleader_workload ~lambda ~alpha_bytes ~beta ~n =
  let per_share = lambda /. float_of_int (n - 1) in
  (per_share *. float_of_int (n - 1))
  +. (per_share *. float_of_int (n - 2))
  +. (lambda /. alpha_bytes *. beta)

let leopard_sf ~alpha_bytes ~beta ~n =
  Float.max
    ((beta *. float_of_int (n - 1) /. alpha_bytes) +. 1.)
    (2. +. (beta /. alpha_bytes))

let recommended_alpha_bytes ~lambda_coeff ~n = lambda_coeff *. float_of_int (n - 1)

let leopard_cost_effectiveness ~alpha_bytes ~beta = 1. /. (2. +. (beta /. alpha_bytes))

let hotstuff_cost_effectiveness ~n = 1. /. float_of_int (n - 1)

let measured_sf ~lambda_bytes_per_sec ~replica_bytes_per_sec =
  match replica_bytes_per_sec with
  | [] -> nan
  | xs -> List.fold_left Float.max neg_infinity xs /. lambda_bytes_per_sec
