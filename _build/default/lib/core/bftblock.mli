(** BFTblocks (§4.2): what agreement instances decide on.

    A BFTblock ⟨BFTblock, (v, sn), ct⟩ carries only the hashes of the
    datablocks it confirms — the decoupling that keeps the leader's
    per-request egress at β/α of the payload instead of the payload
    itself. Dummy blocks fill serial-number gaps after a view change. *)

type t = private {
  view : int;             (** view in which the block was created *)
  sn : int;               (** serial number, assigned by the leader *)
  links : Crypto.Hash.t list; (** ct: hashes of the linked datablocks *)
  dummy : bool;           (** gap filler with empty content (§4.3) *)
  hash_memo : Crypto.Hash.t;  (** memoized {!hash} (view-independent) *)
}

val with_view : t -> int -> t
(** The same block re-proposed in a later view (redo after a view
    change); content hash is unchanged. *)

val create : view:int -> sn:int -> links:Crypto.Hash.t list -> t
val dummy : view:int -> sn:int -> t

val hash : t -> Crypto.Hash.t
(** [H(m)]: what the first voting round signs. The view is excluded so a
    block re-proposed after a view change (same [sn], same content) keeps
    its identity across views, as required by Lemma 5.2. *)

val wire_size : t -> int
(** Bytes on the wire: fixed fields plus 32 per link. *)

val equal_content : t -> t -> bool
(** Same serial number and links (ignores view), the equality of
    Lemma 5.2. *)

val pp : Format.formatter -> t -> unit
