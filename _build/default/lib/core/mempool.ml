open Workload

type t = {
  queue : Request.t Queue.t;
  mutable pending : int; (* request count, including not-yet-skipped confirmed *)
}

let create () = { queue = Queue.create (); pending = 0 }

let add t b =
  Queue.push b t.queue;
  t.pending <- t.pending + b.Request.count

let drop_confirmed_head t =
  let rec go () =
    match Queue.peek_opt t.queue with
    | Some b when Request.is_confirmed b ->
      ignore (Queue.pop t.queue);
      t.pending <- t.pending - b.Request.count;
      go ()
    | Some _ | None -> ()
  in
  go ()

let pending_requests t =
  drop_confirmed_head t;
  t.pending

let is_empty t = pending_requests t = 0

let take t ~target =
  assert (target > 0);
  let rec go acc got =
    drop_confirmed_head t;
    if got >= target then List.rev acc
    else
      match Queue.peek_opt t.queue with
      | None -> List.rev acc
      | Some b ->
        (* Whole batches only: a confirmation flag belongs to exactly one
           datablock. Overshoot is bounded by one client batch, which is
           small next to a datablock. *)
        ignore (Queue.pop t.queue);
        t.pending <- t.pending - b.Request.count;
        go (b :: acc) (got + b.Request.count)
  in
  go [] 0

let has_at_least t target = pending_requests t >= target

let oldest_age t ~now =
  drop_confirmed_head t;
  match Queue.peek_opt t.queue with
  | None -> None
  | Some b -> Some (Sim.Sim_time.( - ) now b.Request.born)
