(** The memory pool (Fig. 4): pending request batches at one replica.

    Non-leader replicas continually drain their mempool into datablocks
    (Algorithm 1). Packed batches are removed to avoid repetition (line
    12); batches confirmed elsewhere (possible when the client fan-out
    [s > 1]) are skipped lazily. *)

type t

val create : unit -> t

val add : t -> Workload.Request.t -> unit

val pending_requests : t -> int
(** Requests currently poolable (confirmed batches may still be counted
    until a take skips them). *)

val is_empty : t -> bool

val take : t -> target:int -> Workload.Request.t list
(** [take t ~target] removes and returns whole batches totalling at least
    [target] requests when available, fewer (possibly none) otherwise —
    FIFO order, skipping already-confirmed batches. The result may
    overshoot [target] by at most the last batch's size. *)

val has_at_least : t -> int -> bool
(** Whether a [take ~target] would reach its target. *)

val oldest_age : t -> now:Sim.Sim_time.t -> Sim.Sim_time.span option
(** Age of the oldest pending batch; drives the partial-pack timeout. *)
