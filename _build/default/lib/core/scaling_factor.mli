(** The paper's scaling-factor metric (§1, §5.2), analytic and measured.

    SF is the heaviest per-replica workload on processing pending
    requests, per bit of requests processed by the protocol per second.
    A protocol whose SF grows with [n] starves at scale; Leopard's is
    constant when α is chosen proportional to [n - 1]. *)

val hotstuff_sf : n:int -> float
(** [n - 1]: the leader disseminates every pending bit to every other
    replica (Eq. 1). *)

val leopard_leader_workload : lambda:float -> alpha_bytes:float -> beta:float -> n:int -> float
(** Γ₁ of Eq. 2: bytes/s at the leader — BFTblock hashes out, datablocks
    in. [lambda] is the protocol's processing rate in bytes/s. *)

val leopard_nonleader_workload : lambda:float -> alpha_bytes:float -> beta:float -> n:int -> float
(** Γ₂ of Eq. 3: bytes/s at a non-leader replica. *)

val leopard_sf : alpha_bytes:float -> beta:float -> n:int -> float
(** max(β(n−1)/α + 1, 2 + β/α) (§5.2). *)

val recommended_alpha_bytes : lambda_coeff:float -> n:int -> float
(** α = λ(n − 1), the choice that makes {!leopard_sf} constant in [n]. *)

val leopard_cost_effectiveness : alpha_bytes:float -> beta:float -> float
(** Λ^Δ/W^Δ = 1 / (2 + β/α) ≈ 1/2 (§5.2, last equation). *)

val hotstuff_cost_effectiveness : n:int -> float
(** 1/(n − 1) (Eq. 1.1): the increase in throughput per unit of added
    per-replica bandwidth approaches 0 at scale. *)

val measured_sf : lambda_bytes_per_sec:float -> replica_bytes_per_sec:float list -> float
(** Empirical SF: heaviest measured per-replica traffic (sent + received
    bytes/s) over the measured request-processing rate. *)
