(** Threshold-share collection for one voting round.

    The collector (the leader, §4.1) accumulates shares from distinct
    members until the quorum [2f + 1] is reached, at which point the
    shares are released exactly once for aggregation. *)

type t

val create : need:int -> t
(** Requires [need >= 1]. *)

type outcome =
  | Pending of int          (** distinct shares so far, still below need *)
  | Ready of Crypto.Threshold.share list
      (** the quorum was just completed; returned exactly once *)
  | Already_done            (** quorum was completed earlier *)

val add : t -> Crypto.Threshold.share -> outcome
(** Adds a share; duplicates (by member index) are ignored. *)

val count : t -> int
val is_done : t -> bool
