type t = {
  view : int;
  sn : int;
  links : Crypto.Hash.t list;
  dummy : bool;
  hash_memo : Crypto.Hash.t;
}

let compute_hash ~sn ~links ~dummy =
  Crypto.Hash.of_strings
    (Printf.sprintf "bftblock:%d:%b" sn dummy :: List.map Crypto.Hash.raw links)

let create ~view ~sn ~links =
  { view; sn; links; dummy = false; hash_memo = compute_hash ~sn ~links ~dummy:false }

let dummy ~view ~sn =
  { view; sn; links = []; dummy = true; hash_memo = compute_hash ~sn ~links:[] ~dummy:true }

let hash t = t.hash_memo
let with_view t view = { t with view }

let wire_size t = 24 + (Crypto.Hash.size_bytes * List.length t.links)

let equal_content a b =
  a.sn = b.sn && a.dummy = b.dummy
  && List.length a.links = List.length b.links
  && List.for_all2 Crypto.Hash.equal a.links b.links

let pp fmt t =
  if t.dummy then Format.fprintf fmt "bftblock(v%d sn%d dummy)" t.view t.sn
  else Format.fprintf fmt "bftblock(v%d sn%d %d links)" t.view t.sn (List.length t.links)
