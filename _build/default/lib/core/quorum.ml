type t = {
  need : int;
  mutable shares : Crypto.Threshold.share list;
  mutable indices : int list;
  mutable released : bool;
}

type outcome =
  | Pending of int
  | Ready of Crypto.Threshold.share list
  | Already_done

let create ~need =
  assert (need >= 1);
  { need; shares = []; indices = []; released = false }

let count t = List.length t.indices
let is_done t = t.released

let add t share =
  if t.released then Already_done
  else begin
    let idx = Crypto.Threshold.share_index share in
    if List.mem idx t.indices then Pending (count t)
    else begin
      t.shares <- share :: t.shares;
      t.indices <- idx :: t.indices;
      if count t >= t.need then begin
        t.released <- true;
        let out = t.shares in
        t.shares <- [];
        Ready out
      end
      else Pending (count t)
    end
  end
