(** Byzantine replica strategies.

    The evaluation runs with the Byzantine replica number touching the
    1/3 resilience bound (§6.2); these strategies control what faulty
    replicas do. All are implemented inside {!Replica} — a Byzantine
    replica runs the same state machine with adversarial deviations. *)

type t =
  | Honest
  | Silent
      (** sends nothing at all — the strongest *omission* fault for vote
          quorums: with [f] silent replicas exactly [2f + 1] voters remain *)
  | Equivocate_datablocks
      (** emits pairs of different datablocks under the same counter,
          split across the replica set, and both to the leader — the
          attack the counter check of Algorithm 1 line 18 defends against *)
  | Censor
      (** accepts client requests but never packs them into datablocks —
          the censorship attack countered by client re-sends (§4.1) *)
  | Crash_at of Sim.Sim_time.t
      (** honest until the given instant, then fail-stop (used to stop
          leaders for the view-change experiments, §6.2.4) *)

val is_byzantine : t -> bool
val pp : Format.formatter -> t -> unit
