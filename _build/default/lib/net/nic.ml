open Sim

type priority = High | Low

type 'a item = { size : int; payload : 'a }

(* One physical line is [lanes] independent serializers sharing the two
   priority queues; each picks up the next queued item when it goes idle. *)
type 'a t = {
  engine : Engine.t;
  mutable rate_bps : float;       (* total line rate, split across lanes *)
  lanes : int;
  on_done : 'a -> unit;
  high : 'a item Queue.t;
  low : 'a item Queue.t;
  mutable in_flight : int;        (* lanes currently transmitting *)
  mutable busy : Sim_time.span;
  mutable depth : int;
}

let create ?(lanes = 1) engine ~rate_bps ~on_done =
  assert (lanes >= 1);
  { engine;
    rate_bps;
    lanes;
    on_done;
    high = Queue.create ();
    low = Queue.create ();
    in_flight = 0;
    busy = 0L;
    depth = 0 }

let tx_time ~rate_bps ~size =
  if rate_bps <= 0. then 0L else Sim_time.of_sec (float_of_int (size * 8) /. rate_bps)

let rec start_next t =
  if t.in_flight < t.lanes then begin
    let next =
      if not (Queue.is_empty t.high) then Some (Queue.pop t.high)
      else if not (Queue.is_empty t.low) then Some (Queue.pop t.low)
      else None
    in
    match next with
    | None -> ()
    | Some item ->
      t.in_flight <- t.in_flight + 1;
      let lane_rate = t.rate_bps /. float_of_int t.lanes in
      let dt = tx_time ~rate_bps:lane_rate ~size:item.size in
      t.busy <- Sim_time.(t.busy + dt);
      ignore
        (Engine.schedule t.engine ~delay:dt (fun () ->
             t.depth <- t.depth - 1;
             t.in_flight <- t.in_flight - 1;
             t.on_done item.payload;
             start_next t));
      (* other idle lanes may pick up queued items too *)
      start_next t
  end

let submit t ~priority ~size payload =
  let q = match priority with High -> t.high | Low -> t.low in
  Queue.push { size; payload } q;
  t.depth <- t.depth + 1;
  start_next t

let busy_span t = t.busy
let queue_depth t = t.depth
let set_rate t rate = t.rate_bps <- rate
