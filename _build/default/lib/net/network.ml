open Sim

type 'msg meta = {
  size : 'msg -> int;
  category : 'msg -> string;
  priority : 'msg -> Nic.priority;
}

type link = {
  out_bps : float;
  in_bps : float;
  prop_delay : Sim_time.span;
  jitter : Sim_time.span;
  lanes : int;
}

let default_link =
  { out_bps = 4.9e9;
    in_bps = 4.9e9;
    prop_delay = Sim_time.ms 1;
    jitter = Sim_time.us 200;
    lanes = 1 }

let mbps x = x *. 1e6
let gbps x = x *. 1e9

(* What travels through NICs: protocol messages, client injections, and
   external egress (client acks), each with enough context to finish the
   hop when serialization completes. *)
type 'msg packet =
  | Proto of { src : Node_id.t; dst : Node_id.t; msg : 'msg }
  | External of { callback : unit -> unit }

type 'msg node = {
  egress : 'msg packet Nic.t;
  ingress : 'msg packet Nic.t;
  account : Bandwidth.t;
  mutable handler : (src:Node_id.t -> 'msg -> unit) option;
  mutable down : bool;
}

type 'msg t = {
  engine : Engine.t;
  meta : 'msg meta;
  mutable link : link;
  nodes : 'msg node array;
  rng : Rng.t;
  mutable extra_delay :
    (now:Sim_time.t -> src:Node_id.t -> dst:Node_id.t -> Sim_time.span) option;
}

let engine t = t.engine
let n t = Array.length t.nodes

let deliver t dst packet =
  let node = t.nodes.(dst) in
  if not node.down then
    match packet with
    | External { callback } -> callback ()
    | Proto { src; msg; _ } ->
      Bandwidth.record node.account Received ~category:(t.meta.category msg) (t.meta.size msg);
      (match node.handler with
       | Some h -> h ~src msg
       | None -> ())

let wire_delay t ~src ~dst =
  let base = t.link.prop_delay in
  let jit =
    if Int64.compare t.link.jitter 0L > 0 then
      Int64.of_float (Rng.float t.rng (Int64.to_float t.link.jitter))
    else 0L
  in
  let extra =
    match t.extra_delay with
    | Some f -> f ~now:(Engine.now t.engine) ~src ~dst
    | None -> 0L
  in
  Sim_time.(base + Sim_time.(jit + extra))

(* Egress completion: the packet crosses the wire, then contends for the
   receiver's ingress NIC. Sent bytes are accounted here — when they have
   actually left the NIC — so a backlogged egress queue cannot inflate a
   measurement window's utilization. *)
let on_egress_done t packet =
  match packet with
  | External _ -> () (* external egress has no in-network destination *)
  | Proto { src; dst; msg } ->
    Bandwidth.record t.nodes.(src).account Sent ~category:(t.meta.category msg)
      (t.meta.size msg);
    let dt = wire_delay t ~src ~dst in
    ignore
      (Engine.schedule t.engine ~delay:dt (fun () ->
           let node = t.nodes.(dst) in
           if not node.down then
             Nic.submit node.ingress ~priority:(t.meta.priority msg) ~size:(t.meta.size msg)
               packet))

let create engine ~n ~meta ~link =
  assert (n >= 1);
  let rng = Rng.split (Engine.rng engine) in
  (* NIC completion callbacks need the network value that owns the NICs;
     tie the knot with a forward reference resolved before any event runs. *)
  let t_ref = ref None in
  let the_t () = match !t_ref with Some t -> t | None -> assert false in
  let make_node i =
    let egress =
      Nic.create ~lanes:link.lanes engine ~rate_bps:link.out_bps
        ~on_done:(fun p -> on_egress_done (the_t ()) p)
    in
    let ingress =
      Nic.create ~lanes:link.lanes engine ~rate_bps:link.in_bps ~on_done:(fun p ->
          let t = the_t () in
          match p with
          | External { callback } -> if not t.nodes.(i).down then callback ()
          | Proto { dst; _ } -> deliver t dst p)
    in
    { egress; ingress; account = Bandwidth.create (); handler = None; down = false }
  in
  let t =
    { engine; meta; link; nodes = Array.init n make_node; rng; extra_delay = None }
  in
  t_ref := Some t;
  t

let set_handler t id h = t.nodes.(id).handler <- Some h

let send t ~src ~dst msg =
  let node = t.nodes.(src) in
  if not node.down then
    if Node_id.equal src dst then deliver t dst (Proto { src; dst; msg })
    else
      Nic.submit node.egress ~priority:(t.meta.priority msg) ~size:(t.meta.size msg)
        (Proto { src; dst; msg })

let multicast t ~src msg =
  for dst = 0 to Array.length t.nodes - 1 do
    if not (Node_id.equal dst src) then send t ~src ~dst msg
  done

let inject t ~dst ~size ~category callback =
  let node = t.nodes.(dst) in
  if not node.down then begin
    Bandwidth.record node.account Received ~category size;
    Nic.submit node.ingress ~priority:Nic.Low ~size (External { callback })
  end

let charge_egress t ~src ~size ~category =
  let node = t.nodes.(src) in
  if not node.down then begin
    Bandwidth.record node.account Sent ~category size;
    Nic.submit node.egress ~priority:Nic.Low ~size (External { callback = (fun () -> ()) })
  end

let set_down t id v = t.nodes.(id).down <- v
let is_down t id = t.nodes.(id).down

let set_extra_delay t f = t.extra_delay <- Some f

let set_rates t ~out_bps ~in_bps =
  t.link <- { t.link with out_bps; in_bps };
  Array.iter
    (fun node ->
      Nic.set_rate node.egress out_bps;
      Nic.set_rate node.ingress in_bps)
    t.nodes

let stats t id = t.nodes.(id).account
let reset_stats t = Array.iter (fun node -> Bandwidth.reset node.account) t.nodes
let egress_queue_depth t id = Nic.queue_depth t.nodes.(id).egress
