type t = int

let equal = Int.equal
let compare = Int.compare
let to_member i = i + 1
let of_member m = m - 1
let pp fmt i = Format.fprintf fmt "r%d" i
