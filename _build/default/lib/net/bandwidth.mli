(** Per-node bandwidth accounting, broken down by message category.

    The paper's Table 4 and Figures 2/10/11/12 are bandwidth measurements;
    every byte entering or leaving a simulated NIC is recorded here under
    the category of its message (e.g. ["datablock"], ["proposal"],
    ["vote"], ["client-req"]). *)

type t

type direction = Sent | Received

val create : unit -> t

val record : t -> direction -> category:string -> int -> unit
(** Adds [bytes] under the category. *)

val total : t -> direction -> int
(** Total bytes in a direction. *)

val by_category : t -> direction -> (string * int) list
(** Per-category bytes, sorted by category name. *)

val category_total : t -> direction -> string -> int

val reset : t -> unit
(** Zeroes all counters (used at the end of the warmup window). *)

val merge_totals : t list -> direction -> int
(** Sum of totals over several accounts. *)
