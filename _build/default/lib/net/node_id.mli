(** Replica identities.

    Replicas are indexed [0 .. n-1]; the paper's 1-based member index for
    threshold shares is [to_member]. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int

val to_member : t -> int
(** 1-based index used by the threshold signature scheme. *)

val of_member : int -> t

val pp : Format.formatter -> t -> unit
