open Sim

type scheduler =
  now:Sim_time.t -> src:Node_id.t -> dst:Node_id.t -> Sim_time.span

let synchronous ~now:_ ~src:_ ~dst:_ = 0L

let until_gst ~rng ~gst ~max_delay ~now ~src:_ ~dst:_ =
  if Sim_time.compare now gst >= 0 || Int64.compare max_delay 0L <= 0 then 0L
  else Int64.of_float (Rng.float rng (Int64.to_float max_delay))

let target_node ~gst ~victim ~delay ~now ~src ~dst =
  if Sim_time.compare now gst >= 0 then 0L
  else if Node_id.equal src victim || Node_id.equal dst victim then delay
  else 0L

let reorder = until_gst

let geo ~regions ~rtt_matrix ~now:_ ~src ~dst = rtt_matrix (regions src) (regions dst)

let combine schedulers ~now ~src ~dst =
  List.fold_left (fun acc sched -> Sim_time.( + ) acc (sched ~now ~src ~dst)) 0L schedulers
