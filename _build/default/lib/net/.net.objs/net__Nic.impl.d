lib/net/nic.ml: Engine Queue Sim Sim_time
