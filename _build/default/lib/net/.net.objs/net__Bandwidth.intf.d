lib/net/bandwidth.mli:
