lib/net/cpu.ml: Array Engine Sim Sim_time
