lib/net/bandwidth.ml: Hashtbl List String
