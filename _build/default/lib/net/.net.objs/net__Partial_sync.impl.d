lib/net/partial_sync.ml: Int64 List Node_id Rng Sim Sim_time
