lib/net/network.ml: Array Bandwidth Engine Int64 Nic Node_id Rng Sim Sim_time
