lib/net/cpu.mli: Sim
