lib/net/node_id.mli: Format
