lib/net/network.mli: Bandwidth Nic Node_id Sim
