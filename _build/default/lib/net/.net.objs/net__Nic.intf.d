lib/net/nic.mli: Sim
