lib/net/partial_sync.mli: Node_id Sim
