(** Partial synchrony adversary (Dwork–Lynch–Stockmeyer model, §3.2).

    Before the global stabilization time (GST) the adversary may delay
    messages arbitrarily; after GST every message arrives within a known
    bound Δ. Each scheduler below is an extra-delay hook for
    {!Network.set_extra_delay}. *)

type scheduler =
  now:Sim.Sim_time.t -> src:Node_id.t -> dst:Node_id.t -> Sim.Sim_time.span

val synchronous : scheduler
(** No extra delay (the network's base propagation already holds). *)

val until_gst :
  rng:Sim.Rng.t -> gst:Sim.Sim_time.t -> max_delay:Sim.Sim_time.span -> scheduler
(** Uniform random delay in [\[0, max_delay\]] before GST; zero after.
    Messages sent just before GST may still land up to [max_delay] late,
    matching the model (the bound holds for messages *sent* after GST). *)

val target_node :
  gst:Sim.Sim_time.t -> victim:Node_id.t -> delay:Sim.Sim_time.span -> scheduler
(** Delays everything to and from [victim] before GST — an adversary
    isolating one replica (e.g. the collector/leader). *)

val reorder :
  rng:Sim.Rng.t -> gst:Sim.Sim_time.t -> max_delay:Sim.Sim_time.span -> scheduler
(** Aggressive pre-GST reordering: each message draws an independent
    delay, so sent order and received order diverge (exercises the
    out-of-order confirmation paths of §4.1). Alias of {!until_gst}; kept
    distinct for test readability. *)

val geo :
  regions:(Node_id.t -> int) -> rtt_matrix:(int -> int -> Sim.Sim_time.span) -> scheduler
(** Static geo-distribution: adds the one-way inter-region delay
    [rtt_matrix (regions src) (regions dst)] to every message, for
    modelling the paper's geo-distributed deployments (§4.1 notes
    replicas receive requests from their neighbouring clients). *)

val combine : scheduler list -> scheduler
(** Sum of the component delays. *)
