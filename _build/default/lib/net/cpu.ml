open Sim

type t = {
  engine : Engine.t;
  cores : Sim_time.t array;        (* instant each core becomes free *)
  mutable busy : Sim_time.span;
  mutable depth : int;
}

let create engine ~cores =
  assert (cores >= 1);
  { engine; cores = Array.make cores Sim_time.zero; busy = 0L; depth = 0 }

let earliest_core t =
  let best = ref 0 in
  for i = 1 to Array.length t.cores - 1 do
    if Sim_time.compare t.cores.(i) t.cores.(!best) < 0 then best := i
  done;
  !best

let submit t ~cost f =
  let core = earliest_core t in
  let start = Sim_time.max (Engine.now t.engine) t.cores.(core) in
  let finish = Sim_time.(start + cost) in
  t.cores.(core) <- finish;
  t.busy <- Sim_time.(t.busy + cost);
  t.depth <- t.depth + 1;
  ignore
    (Engine.schedule_at t.engine ~at:finish (fun () ->
         t.depth <- t.depth - 1;
         f ()))

let busy_span t = t.busy
let queue_depth t = t.depth
