(** Chained Leopard: datablock decoupling grafted onto chain-based BFT.

    The paper's §4.3 remark: "the decoupling of data delivery ... can
    also be leveraged based on chain-based BFT protocols, like HotStuff,
    to preserve the efficiency while the number of replicas increases."
    This library is that protocol: chained HotStuff's structure (one
    block per height, each carrying a QC for its parent, three-chain
    commit, trivially cheap view synchronization) with Leopard's data
    plane (non-leaders disseminate datablocks; blocks carry only their
    hashes).

    Compared to full Leopard it gives up parallel agreement instances
    (heights are sequential) in exchange for the chain's simpler
    recovery; compared to plain HotStuff it removes the leader's
    Λ × (n−1) egress. The ablation bench runs all three side by side.

    Like the other baselines this library implements the normal case
    only (stable, honest leader): it exists for the throughput/bandwidth
    comparison, and leader replacement for chained protocols is the
    well-trodden HotStuff pacemaker. Leopard's full view change lives in
    {!Core.Replica}. *)

type cfg = {
  n : int;
  f : int;
  alpha : int;              (** requests per datablock *)
  links_per_block : int;    (** datablock hashes per chain block *)
  payload : int;
  datablock_timeout : Sim.Sim_time.span;
  proposal_timeout : Sim.Sim_time.span;
  cost : Crypto.Cost_model.t;
  cores : int;
}

val make_cfg :
  n:int ->
  ?alpha:int ->
  ?links_per_block:int ->
  ?payload:int ->
  ?datablock_timeout:Sim.Sim_time.span ->
  ?proposal_timeout:Sim.Sim_time.span ->
  ?cost:Crypto.Cost_model.t ->
  ?cores:int ->
  unit ->
  cfg
(** Defaults follow {!Core.Config.paper_batch_sizes} for alpha and use
    BFTsize/4 links per block (chain blocks are smaller since they are
    sequential); timers at 500 ms. *)

type spec = {
  cfg : cfg;
  link : Net.Network.link;
  seed : int64;
  load : float;
  duration : Sim.Sim_time.span;
  warmup : Sim.Sim_time.span;
  silent : int;
}

val spec :
  cfg:cfg ->
  ?link:Net.Network.link ->
  ?seed:int64 ->
  ?load:float ->
  ?duration:Sim.Sim_time.span ->
  ?warmup:Sim.Sim_time.span ->
  ?silent:int ->
  unit ->
  spec

type report = {
  n : int;
  offered : int;
  confirmed : int;
  throughput : float;
  latency : Stats.Histogram.t;
  leader_bps : float;
  committed_heights : int;
  safety_ok : bool;
}

val run : spec -> report
