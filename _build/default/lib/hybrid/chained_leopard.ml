open Sim
module Ts = Crypto.Threshold
module Hash = Crypto.Hash

type cfg = {
  n : int;
  f : int;
  alpha : int;
  links_per_block : int;
  payload : int;
  datablock_timeout : Sim_time.span;
  proposal_timeout : Sim_time.span;
  cost : Crypto.Cost_model.t;
  cores : int;
}

let make_cfg ~n ?alpha ?links_per_block ?(payload = 128)
    ?(datablock_timeout = Sim_time.ms 500) ?(proposal_timeout = Sim_time.ms 500)
    ?(cost = Crypto.Cost_model.paper) ?(cores = 4) () =
  if n < 4 then invalid_arg "Chained_leopard.make_cfg: n must be at least 4";
  let default_alpha, default_bft = Core.Config.paper_batch_sizes ~n in
  { n;
    f = (n - 1) / 3;
    alpha = Option.value alpha ~default:default_alpha;
    links_per_block = Option.value links_per_block ~default:(max 1 (default_bft / 4));
    payload;
    datablock_timeout;
    proposal_timeout;
    cost;
    cores }

let quorum cfg = (2 * cfg.f) + 1

type block = { height : int; parent : Hash.t; links : Hash.t list; hash_memo : Hash.t }

let genesis_hash = Hash.of_string "chained-leopard.genesis"

let make_block ~height ~parent ~links =
  { height;
    parent;
    links;
    hash_memo =
      Hash.of_strings
        (Printf.sprintf "clblock:%d" height :: Hash.raw parent :: List.map Hash.raw links) }

let block_hash b = b.hash_memo
let block_wire b = 24 + Hash.size_bytes + (Hash.size_bytes * List.length b.links)

type qc = { qc_height : int; qc_block : Hash.t; qc_proof : Ts.aggregate }

type msg =
  | Datablock_msg of Core.Datablock.t
  | Proposal of { block : block; justify : qc option }
  | Vote of { height : int; block_hash : Hash.t; share : Ts.share }
  | Fetch of { hash : Hash.t }
  | Fetch_reply of Core.Datablock.t

let vote_payload ~height ~block_hash =
  Printf.sprintf "cl.vote:%d:%s" height (Hash.raw block_hash)

let wire_size = function
  | Datablock_msg db | Fetch_reply db -> Core.Datablock.wire_size db
  | Proposal { block; justify } ->
    block_wire block
    + (match justify with Some _ -> 8 + Hash.size_bytes + Ts.aggregate_size_bytes | None -> 1)
  | Vote _ -> 24 + Hash.size_bytes + Ts.share_size_bytes
  | Fetch _ -> 24 + Hash.size_bytes

let category = function
  | Datablock_msg _ | Fetch_reply _ -> "datablock"
  | Proposal _ -> "proposal"
  | Vote _ -> "vote"
  | Fetch _ -> "fetch"

let priority = function
  | Datablock_msg _ | Fetch_reply _ -> Net.Nic.Low
  | Proposal _ | Vote _ | Fetch _ -> Net.Nic.High

let meta = Net.Network.{ size = wire_size; category; priority }

(* ------------------------------------------------------------------- *)

type collector = { mutable shares : Ts.share list; mutable indices : int list; mutable fired : bool }

type replica = {
  engine : Engine.t;
  network : msg Net.Network.t;
  cfg : cfg;
  id : Net.Node_id.t;
  leader : Net.Node_id.t;
  sk : Crypto.Signature.private_key;
  tsetup : Ts.setup;
  tkey : Ts.member_key;
  silent : bool;
  cpu : Net.Cpu.t;
  mempool : Core.Mempool.t;
  pool : Core.Datablock_pool.t;
  pks : Crypto.Signature.public_key array;
  blocks : (int, block) Hashtbl.t;
  mutable voted_up_to : int;
  votes : (int, collector) Hashtbl.t;
  mutable high_qc : qc option;
  mutable next_height : int;
  mutable committed_up_to : int;
  mutable commit_target : int;   (* highest height known committable *)
  mutable db_counter : int;
  mutable last_proposal : Sim_time.t;
  mutable last_partial_pack : Sim_time.t;
  waiting : (int, block * qc option) Hashtbl.t;  (* proposals awaiting datablocks *)
  mutable fetch_inflight : Hash.Set.t;
  on_commit : id:Net.Node_id.t -> height:int -> block -> Core.Datablock.t list -> unit;
}

let is_leader r = Net.Node_id.equal r.id r.leader
let active r = not r.silent
let now r = Engine.now r.engine
let with_cpu r cost f = Net.Cpu.submit r.cpu ~cost f

(* -- datablock plane (Algorithm 1, unchanged from Leopard) ----------- *)

let send_datablock r batches =
  let counter = r.db_counter in
  r.db_counter <- counter + 1;
  let db = Core.Datablock.create ~sk:r.sk ~creator:r.id ~counter ~now:(now r) batches in
  let cost =
    Sim_time.( + ) r.cfg.cost.sign
      (Crypto.Cost_model.hash_cost r.cfg.cost ~bytes_len:db.Core.Datablock.payload_bytes)
  in
  with_cpu r cost (fun () ->
      if active r then begin
        ignore (Core.Datablock_pool.add r.pool db);
        Net.Network.multicast r.network ~src:r.id (Datablock_msg db)
      end)

let maybe_pack r =
  if active r && not (is_leader r) then begin
    if Core.Mempool.has_at_least r.mempool r.cfg.alpha then begin
      let batches = Core.Mempool.take r.mempool ~target:r.cfg.alpha in
      if batches <> [] then send_datablock r batches
    end
    else if
      Int64.compare r.cfg.datablock_timeout 0L > 0
      && (match Core.Mempool.oldest_age r.mempool ~now:(now r) with
          | Some age -> Sim_time.compare age r.cfg.datablock_timeout >= 0
          | None -> false)
      && Sim_time.compare (now r) r.last_partial_pack > 0
    then begin
      r.last_partial_pack <- Sim_time.( + ) (now r) r.cfg.datablock_timeout;
      let batches = Core.Mempool.take r.mempool ~target:max_int in
      if batches <> [] then send_datablock r batches
    end
  end

(* -- chain plane (chained HotStuff over datablock links) -------------- *)

let commit_through r target =
  let rec go h =
    if h <= target then (
      match Hashtbl.find_opt r.blocks h with
      | None -> ()
      | Some block ->
        let dbs = List.filter_map (Core.Datablock_pool.find r.pool) block.links in
        (* all links present: availability was checked before voting, and
           2f+1 voters vouch for the data *)
        if List.length dbs = List.length block.links then begin
          r.committed_up_to <- h;
          List.iter
            (fun (db : Core.Datablock.t) ->
              List.iter Workload.Request.mark_confirmed db.Core.Datablock.batches)
            dbs;
          r.on_commit ~id:r.id ~height:h block dbs;
          go (h + 1)
        end)
  in
  go (r.committed_up_to + 1)

let ready_to_propose r =
  r.next_height = 1
  || (match r.high_qc with Some qc -> qc.qc_height = r.next_height - 1 | None -> false)

let rec maybe_propose r =
  if active r && is_leader r && ready_to_propose r then begin
    let pending = Core.Datablock_pool.pending r.pool in
    let full = pending >= r.cfg.links_per_block in
    let timed_out =
      pending > 0
      && Sim_time.compare Sim_time.(now r - r.last_proposal) r.cfg.proposal_timeout >= 0
    in
    if full || timed_out then begin
      r.last_proposal <- now r;
      let dbs = Core.Datablock_pool.take_pending r.pool ~max:r.cfg.links_per_block in
      if dbs <> [] then begin
        let links = List.map Core.Datablock.hash dbs in
        let height = r.next_height in
        let parent = match r.high_qc with Some qc -> qc.qc_block | None -> genesis_hash in
        let block = make_block ~height ~parent ~links in
        let justify = r.high_qc in
        r.next_height <- height + 1;
        Hashtbl.replace r.blocks height block;
        with_cpu r r.cfg.cost.tsig_share (fun () ->
            if active r then begin
              Net.Network.multicast r.network ~src:r.id (Proposal { block; justify });
              record_vote r ~height ~block_hash:(block_hash block)
                ~share:(Ts.sign_share r.tkey (vote_payload ~height ~block_hash:(block_hash block)))
            end)
      end
    end
  end

and record_vote r ~height ~block_hash ~share =
  if Ts.verify_share r.tsetup share (vote_payload ~height ~block_hash) then begin
    let c =
      match Hashtbl.find_opt r.votes height with
      | Some c -> c
      | None ->
        let c = { shares = []; indices = []; fired = false } in
        Hashtbl.add r.votes height c;
        c
    in
    let idx = Ts.share_index share in
    if (not c.fired) && not (List.mem idx c.indices) then begin
      c.shares <- share :: c.shares;
      c.indices <- idx :: c.indices;
      if List.length c.indices >= quorum r.cfg then begin
        c.fired <- true;
        let shares = c.shares in
        c.shares <- [];
        let cost = Crypto.Cost_model.combine_cost r.cfg.cost ~shares:(List.length shares) in
        with_cpu r cost (fun () ->
            if active r then
              match Ts.combine r.tsetup (vote_payload ~height ~block_hash) shares with
              | None -> ()
              | Some proof ->
                r.high_qc <- Some { qc_height = height; qc_block = block_hash; qc_proof = proof };
                r.commit_target <- max r.commit_target (height - 2);
                commit_through r r.commit_target;
                maybe_propose r)
      end
    end
  end

let try_vote r block justify =
  let h = block.height in
  let bh = block_hash block in
  let justify_ok =
    match justify with
    | None -> h = 1
    | Some qc ->
      qc.qc_height = h - 1
      && Ts.verify r.tsetup qc.qc_proof
           (vote_payload ~height:qc.qc_height ~block_hash:qc.qc_block)
  in
  if justify_ok then begin
    (* A justify QC for h-1 makes h-3 committable (three-chain). *)
    (match justify with
     | Some qc -> r.commit_target <- max r.commit_target (qc.qc_height - 2)
     | None -> ());
    let missing = Core.Datablock_pool.missing_links r.pool block.links in
    if missing = [] then begin
      Hashtbl.remove r.waiting h;
      Hashtbl.replace r.blocks h block;
      List.iter (Core.Datablock_pool.mark_linked r.pool) block.links;
      commit_through r r.commit_target;
      if h > r.voted_up_to then begin
        r.voted_up_to <- h;
        let share = Ts.sign_share r.tkey (vote_payload ~height:h ~block_hash:bh) in
        Net.Network.send r.network ~src:r.id ~dst:r.leader
          (Vote { height = h; block_hash = bh; share })
      end
    end
    else begin
      Hashtbl.replace r.waiting h (block, justify);
      ignore
        (Engine.schedule r.engine ~delay:(Sim_time.ms 100) (fun () ->
             if active r && Hashtbl.mem r.waiting h then
               List.iter
                 (fun hash ->
                   if not (Hash.Set.mem hash r.fetch_inflight) then begin
                     r.fetch_inflight <- Hash.Set.add hash r.fetch_inflight;
                     Net.Network.send r.network ~src:r.id ~dst:r.leader (Fetch { hash })
                   end)
                 (Core.Datablock_pool.missing_links r.pool block.links)))
    end
  end

let retry_waiting r =
  if Hashtbl.length r.waiting > 0 then begin
    let entries = Hashtbl.fold (fun h e acc -> (h, e) :: acc) r.waiting [] in
    List.iter
      (fun (_, (block, justify)) ->
        if Core.Datablock_pool.missing_links r.pool block.links = [] then
          with_cpu r r.cfg.cost.tsig_share (fun () -> if active r then try_vote r block justify))
      entries
  end

let handle r ~src m =
  if active r then
    match m with
    | Datablock_msg db | Fetch_reply db ->
      let cost =
        Sim_time.( + ) r.cfg.cost.verify
          (Crypto.Cost_model.hash_cost r.cfg.cost ~bytes_len:db.Core.Datablock.payload_bytes)
      in
      with_cpu r cost (fun () ->
          if active r && Core.Datablock.verify ~pks:r.pks db then begin
            r.fetch_inflight <- Hash.Set.remove (Core.Datablock.hash db) r.fetch_inflight;
            match Core.Datablock_pool.add r.pool db with
            | Core.Datablock_pool.Accepted ->
              retry_waiting r;
              maybe_propose r
            | Core.Datablock_pool.Duplicate | Core.Datablock_pool.Equivocation _ ->
              retry_waiting r
          end)
    | Proposal { block; justify } ->
      let cost = Sim_time.( + ) r.cfg.cost.tvrf_aggregate r.cfg.cost.tsig_share in
      with_cpu r cost (fun () -> if active r then try_vote r block justify)
    | Vote { height; block_hash; share } ->
      if is_leader r then
        with_cpu r r.cfg.cost.tvrf_share (fun () ->
            if active r then record_vote r ~height ~block_hash ~share)
    | Fetch { hash } -> (
        match Core.Datablock_pool.find r.pool hash with
        | Some db -> Net.Network.send r.network ~src:r.id ~dst:src (Fetch_reply db)
        | None -> ())

let submit r b =
  if active r then begin
    Core.Mempool.add r.mempool b;
    maybe_pack r
  end

let rec tick r =
  if active r then begin
    maybe_pack r;
    maybe_propose r;
    let base =
      if Int64.compare r.cfg.datablock_timeout 0L > 0 then r.cfg.datablock_timeout
      else Sim_time.ms 500
    in
    ignore (Engine.schedule r.engine ~delay:base (fun () -> tick r))
  end

(* ------------------------------------------------------------------- *)

type spec = {
  cfg : cfg;
  link : Net.Network.link;
  seed : int64;
  load : float;
  duration : Sim_time.span;
  warmup : Sim_time.span;
  silent : int;
}

let spec ~cfg ?(link = Net.Network.default_link) ?(seed = 42L) ?(load = 1e5)
    ?(duration = Sim_time.s 20) ?(warmup = Sim_time.s 5) ?silent () =
  { cfg; link; seed; load; duration; warmup; silent = Option.value silent ~default:cfg.f }

type report = {
  n : int;
  offered : int;
  confirmed : int;
  throughput : float;
  latency : Stats.Histogram.t;
  leader_bps : float;
  committed_heights : int;
  safety_ok : bool;
}

let run (sp : spec) =
  let cfg = sp.cfg in
  let n = cfg.n in
  let engine = Engine.create ~seed:sp.seed () in
  let network = Net.Network.create engine ~n ~meta ~link:sp.link in
  let key_rng = Rng.split (Engine.rng engine) in
  let keys = Array.init n (fun _ -> Crypto.Signature.keygen key_rng) in
  let pks = Array.map fst keys in
  let tsetup, tkeys = Ts.keygen key_rng ~threshold:(2 * cfg.f) ~parties:n in
  let leader = 0 in
  let silent_set = List.init sp.silent (fun i -> n - 1 - i) in
  let commit_counts : (int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  let counted : (int, unit) Hashtbl.t = Hashtbl.create 65536 in
  let commit_hashes : (int, Hash.t) Hashtbl.t = Hashtbl.create 1024 in
  let confirm_meter = Stats.Meter.create () in
  let latency = Stats.Histogram.create () in
  let confirmed = ref 0 in
  let committed_heights = ref 0 in
  let safety_ok = ref true in
  let fp1 = cfg.f + 1 in
  let on_commit ~id:_ ~height block dbs =
    (match Hashtbl.find_opt commit_hashes height with
     | Some h -> if not (Hash.equal h (block_hash block)) then safety_ok := false
     | None -> Hashtbl.add commit_hashes height (block_hash block));
    let c =
      match Hashtbl.find_opt commit_counts height with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.add commit_counts height c;
        c
    in
    incr c;
    if !c = fp1 then begin
      incr committed_heights;
      let at = Engine.now engine in
      List.iter
        (fun (db : Core.Datablock.t) ->
          List.iter
            (fun (b : Workload.Request.t) ->
              if not (Hashtbl.mem counted b.Workload.Request.id) then begin
                Hashtbl.add counted b.Workload.Request.id ();
                confirmed := !confirmed + b.Workload.Request.count;
                Stats.Meter.add confirm_meter ~at b.Workload.Request.count;
                Stats.Histogram.add latency Sim_time.(at - b.Workload.Request.born)
              end)
            db.Core.Datablock.batches)
        dbs
    end
  in
  let replicas =
    Array.init n (fun id ->
        let r =
          { engine;
            network;
            cfg;
            id;
            leader;
            sk = snd keys.(id);
            tsetup;
            tkey = tkeys.(id);
            silent = List.mem id silent_set;
            cpu = Net.Cpu.create engine ~cores:cfg.cores;
            mempool = Core.Mempool.create ();
            pool = Core.Datablock_pool.create ();
            pks;
            blocks = Hashtbl.create 256;
            voted_up_to = 0;
            votes = Hashtbl.create 64;
            high_qc = None;
            next_height = 1;
            committed_up_to = 0;
            commit_target = 0;
            db_counter = 1;
            last_proposal = Sim_time.zero;
            last_partial_pack = Sim_time.zero;
            waiting = Hashtbl.create 16;
            fetch_inflight = Hash.Set.empty;
            on_commit }
        in
        Net.Network.set_handler network id (fun ~src m -> handle r ~src m);
        r)
  in
  Array.iter (fun r -> if active r then tick r) replicas;
  let targets =
    List.filter
      (fun id -> (not (Net.Node_id.equal id leader)) && not (List.mem id silent_set))
      (List.init n Fun.id)
  in
  let gen =
    let tick_span = if n >= 128 then Sim_time.ms 100 else Sim_time.ms 20 in
    Workload.Generator.start engine ~rate:sp.load ~payload:cfg.payload ~targets ~tick:tick_span
      ~inject:(fun ~dst ~size cb -> Net.Network.inject network ~dst ~size ~category:"client-req" cb)
      ~submit:(fun ~target b -> submit replicas.(target) b)
      ~until:sp.duration ()
  in
  ignore (Engine.schedule_at engine ~at:sp.warmup (fun () -> Net.Network.reset_stats network));
  Engine.run ~until:sp.duration engine;
  let window_sec = Sim_time.to_sec Sim_time.(sp.duration - sp.warmup) in
  let acct = Net.Network.stats network leader in
  let bytes =
    Net.Bandwidth.total acct Net.Bandwidth.Sent + Net.Bandwidth.total acct Net.Bandwidth.Received
  in
  { n;
    offered = Workload.Generator.offered gen;
    confirmed = !confirmed;
    throughput = Stats.Meter.rate confirm_meter ~from_:sp.warmup ~until:sp.duration;
    latency;
    leader_bps = (if window_sec <= 0. then 0. else 8. *. float_of_int bytes /. window_sec);
    committed_heights = !committed_heights;
    safety_ok = !safety_ok }
