lib/hybrid/chained_leopard.mli: Crypto Net Sim Stats
