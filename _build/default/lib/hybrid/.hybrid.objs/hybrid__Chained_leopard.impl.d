lib/hybrid/chained_leopard.ml: Array Core Crypto Engine Fun Hashtbl Int64 List Net Option Printf Rng Sim Sim_time Stats Workload
