(** Deterministic discrete-event simulation engine.

    The engine maintains a virtual clock and a priority queue of pending
    events. [run] repeatedly pops the earliest event, advances the clock to
    its instant, and executes its callback; callbacks schedule further
    events. Two events at the same instant fire in schedule order, so a run
    is a pure function of the seed and the initial schedule. *)

type t

type handle
(** A scheduled event, usable for cancellation (e.g. protocol timers). *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] is a fresh engine with clock at {!Sim_time.zero}.
    Default seed is [1L]. *)

val now : t -> Sim_time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root random stream. Components that need their own stream
    should [Rng.split] it once at set-up time. *)

val schedule : t -> delay:Sim_time.span -> (unit -> unit) -> handle
(** [schedule t ~delay f] arranges for [f ()] to run [delay] after [now t].
    A negative delay is clamped to zero. *)

val schedule_at : t -> at:Sim_time.t -> (unit -> unit) -> handle
(** [schedule_at t ~at f] arranges for [f ()] to run at instant [at]
    (clamped to [now t] if in the past). *)

val cancel : handle -> unit
(** Cancels a pending event; cancelling a fired or already-cancelled event
    is a no-op. *)

val pending : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events (cancelled
    events may be counted until they are garbage-popped). *)

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** [run ?until ?max_events t] executes events in order until the queue is
    empty, the clock passes [until], or [max_events] events have fired.
    When stopping on [until], the clock is left at [until] and later events
    remain queued. *)

val step : t -> bool
(** Executes the single earliest event. Returns [false] when the queue is
    empty. *)
