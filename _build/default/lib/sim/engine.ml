type event = { callback : unit -> unit; mutable cancelled : bool }

type handle = event

type t = {
  mutable clock : Sim_time.t;
  queue : event Heap.t;
  mutable next_seq : int;
  root_rng : Rng.t;
  mutable live : int;
}

let create ?(seed = 1L) () =
  { clock = Sim_time.zero;
    queue = Heap.create ();
    next_seq = 0;
    root_rng = Rng.create seed;
    live = 0 }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t ~at callback =
  let at = Sim_time.max at t.clock in
  let ev = { callback; cancelled = false } in
  Heap.add t.queue ~key:at ~seq:t.next_seq ev;
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  ev

let schedule t ~delay callback =
  let delay = if Int64.compare delay 0L < 0 then 0L else delay in
  schedule_at t ~at:Sim_time.(t.clock + delay) callback

let cancel ev =
  ev.cancelled <- true

let pending t = t.live

let fire t at ev =
  t.live <- t.live - 1;
  if not ev.cancelled then begin
    t.clock <- at;
    ev.callback ()
  end

let step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some (at, _, ev) ->
    fire t at ev;
    true

let run ?until ?max_events t =
  let fired = ref 0 in
  let budget_left () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let stop_at_limit () =
    match until with
    | Some limit when Sim_time.compare t.clock limit < 0 -> t.clock <- limit
    | Some _ | None -> ()
  in
  let rec loop () =
    if budget_left () then
      match Heap.peek_min t.queue with
      | None -> stop_at_limit ()
      | Some (at, _, _) ->
        (match until with
         | Some limit when Sim_time.compare at limit > 0 -> t.clock <- limit
         | Some _ | None ->
           (match Heap.pop_min t.queue with
            | None -> ()
            | Some (at, _, ev) ->
              if not ev.cancelled then incr fired;
              fire t at ev;
              loop ()))
  in
  loop ()
