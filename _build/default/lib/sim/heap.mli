(** Binary min-heap keyed by [(int64, int)] pairs.

    The event queue of the simulation engine: the primary key is the firing
    instant, the secondary key a strictly increasing sequence number so that
    events scheduled for the same instant fire in schedule order (FIFO),
    which keeps runs deterministic. *)

type 'a t

val create : unit -> 'a t
(** An empty heap. *)

val length : 'a t -> int
(** Number of stored elements. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int64 -> seq:int -> 'a -> unit
(** [add h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val pop_min : 'a t -> (int64 * int * 'a) option
(** Removes and returns the minimum element, or [None] when empty. *)

val peek_min : 'a t -> (int64 * int * 'a) option
(** Returns the minimum element without removing it. *)

val clear : 'a t -> unit
(** Removes all elements. *)
