type t = int64
type span = int64

let zero = 0L
let ( + ) = Int64.add
let ( - ) = Int64.sub
let compare = Int64.compare
let min a b = if Int64.compare a b <= 0 then a else b
let max a b = if Int64.compare a b >= 0 then a else b
let ns x = Int64.of_int x
let us x = Int64.mul (Int64.of_int x) 1_000L
let ms x = Int64.mul (Int64.of_int x) 1_000_000L
let s x = Int64.mul (Int64.of_int x) 1_000_000_000L
let of_sec x = Int64.of_float (Float.round (x *. 1e9))
let to_sec sp = Int64.to_float sp /. 1e9
let pp fmt t = Format.fprintf fmt "%.6fs" (to_sec t)
