(** Simulated time.

    Time is an absolute instant measured in integer nanoseconds since the
    start of the simulation; a span is a signed duration in nanoseconds.
    Integer nanoseconds keep the simulation deterministic (no float drift)
    while still resolving sub-microsecond NIC serialization delays. *)

type t = int64
(** An absolute instant, in nanoseconds since simulation start. *)

type span = int64
(** A duration, in nanoseconds. *)

val zero : t
(** The simulation origin. *)

val ( + ) : t -> span -> t
(** [t + s] is the instant [s] after [t]. *)

val ( - ) : t -> t -> span
(** [t1 - t2] is the duration from [t2] to [t1]. *)

val compare : t -> t -> int
(** Total order on instants. *)

val min : t -> t -> t
val max : t -> t -> t

val ns : int -> span
(** [ns x] is [x] nanoseconds. *)

val us : int -> span
(** [us x] is [x] microseconds. *)

val ms : int -> span
(** [ms x] is [x] milliseconds. *)

val s : int -> span
(** [s x] is [x] seconds. *)

val of_sec : float -> span
(** [of_sec x] is [x] seconds, rounded to the nearest nanosecond. *)

val to_sec : span -> float
(** [to_sec s] is [s] expressed in seconds. *)

val pp : Format.formatter -> t -> unit
(** Prints an instant as fractional seconds, e.g. ["1.250s"]. *)
