type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). Passes BigCrush; one 64-bit state word. *)
let next_raw t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw
let split t = create (next_raw t)

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the native int (63-bit) stays non-negative. *)
  let v = Int64.to_int (Int64.logand (next_raw t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t bound =
  assert (bound > 0.);
  (* 53 uniform mantissa bits scaled into [0, bound). *)
  let bits = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_raw t) 1L = 1L

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t 1.0 in
  (* Guard against log 0 on the (measure-zero but representable) draw u = 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  (* Floyd's algorithm: O(k) expected draws, no O(n) allocation. *)
  let module IS = Set.Make (Int) in
  let rec go j acc =
    if j > n then acc
    else
      let v = int t j in
      let acc = if IS.mem v acc then IS.add (j - 1) acc else IS.add v acc in
      go (j + 1) acc
  in
  if k = 0 then [] else IS.elements (go (n - k + 1) IS.empty)
