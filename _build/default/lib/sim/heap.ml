type 'a entry = { key : int64; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let less a b =
  let c = Int64.compare a.key b.key in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow h entry =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap entry in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && less h.data.(l) h.data.(i) then l else i in
  let smallest = if r < h.size && less h.data.(r) h.data.(smallest) then r else smallest in
  if smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(smallest);
    h.data.(smallest) <- tmp;
    sift_down h smallest
  end

let add h ~key ~seq value =
  let entry = { key; seq; value } in
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.key, top.seq, top.value)
  end

let peek_min h =
  if h.size = 0 then None
  else
    let top = h.data.(0) in
    Some (top.key, top.seq, top.value)

let clear h =
  h.data <- [||];
  h.size <- 0
