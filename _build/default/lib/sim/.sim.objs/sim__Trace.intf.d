lib/sim/trace.mli: Format Sim_time
