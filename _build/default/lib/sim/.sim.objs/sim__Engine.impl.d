lib/sim/engine.ml: Heap Int64 Rng Sim_time
