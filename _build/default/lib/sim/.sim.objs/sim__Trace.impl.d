lib/sim/trace.ml: Format List Queue Sim_time String
