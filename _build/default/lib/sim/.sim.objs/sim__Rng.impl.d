lib/sim/rng.ml: Array Int Int64 Set
