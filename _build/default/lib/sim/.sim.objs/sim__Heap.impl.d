lib/sim/heap.ml: Array Int64
