lib/sim/heap.mli:
