lib/sim/engine.mli: Rng Sim_time
