lib/sim/rng.mli:
