(** Deterministic pseudo-random number generator (splitmix64).

    The simulation must be reproducible from a seed, and independent
    components must be able to draw randomness without perturbing each
    other; [split] derives an independent stream for a sub-component. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split rng] draws from [rng] and returns a new generator whose stream
    is statistically independent of subsequent draws from [rng]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool
(** A fair coin flip. *)

val exponential : t -> mean:float -> float
(** [exponential rng ~mean] samples an exponential with the given mean;
    used for Poisson arrival processes. Requires [mean > 0.]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement rng k n] is [k] distinct values drawn
    uniformly from [\[0, n)]. Requires [0 <= k <= n]. *)
