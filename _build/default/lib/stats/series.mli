(** Named (x, y) series — the data behind a figure.

    Bench harnesses build one series per curve (e.g. "Leopard" and
    "HotStuff" throughput vs n) and render them side by side, mirroring
    the paper's plots as text. *)

type t

val create : name:string -> t
val name : t -> string

val add : t -> x:float -> y:float -> unit
(** Appends a point; points are kept in insertion order. *)

val points : t -> (float * float) list

val y_at : t -> x:float -> float option
(** The y of the first point with the given x, if any. *)

val render_table :
  ?x_label:string -> ?fmt_x:(float -> string) -> ?fmt_y:(float -> string) ->
  t list -> string
(** Renders several series sharing (a superset of) x values as an aligned
    text table, one row per distinct x (in first-appearance order), one
    column per series; missing points render as ["-"]. *)
