let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render ~headers rows =
  let cols = List.length headers in
  let normalize row =
    let len = List.length row in
    if len >= cols then row else row @ List.init (cols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let rstrip s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do decr n done;
    String.sub s 0 !n
  in
  let line cells = rstrip (String.concat "  " (List.map2 pad widths cells)) in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line headers :: rule :: List.map line rows)

let render_kv pairs =
  let width = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  String.concat "\n" (List.map (fun (k, v) -> Printf.sprintf "%s  %s" (pad width k) v) pairs)
