type t = {
  values : (string, float ref) Hashtbl.t;
  mutable order : string list; (* reversed first-occurrence order *)
}

let create () = { values = Hashtbl.create 16; order = [] }

let add t name amount =
  match Hashtbl.find_opt t.values name with
  | Some r -> r := !r +. amount
  | None ->
    Hashtbl.add t.values name (ref amount);
    t.order <- name :: t.order

let value t name =
  match Hashtbl.find_opt t.values name with Some r -> !r | None -> 0.

let total t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.values 0.

let share t name =
  let tot = total t in
  if tot = 0. then nan else value t name /. tot

let components t = List.rev_map (fun name -> (name, value t name)) t.order

let render_percent ?grouping t =
  let tot = total t in
  let pct v = if tot = 0. then "-" else Printf.sprintf "%.2f%%" (100. *. v /. tot) in
  match grouping with
  | None ->
    Text_table.render ~headers:[ "Component"; "%" ]
      (List.map (fun (name, v) -> [ name; pct v ]) (components t))
  | Some groups ->
    let rows =
      List.concat_map
        (fun (group, members) ->
          let member_rows = List.map (fun m -> [ group; m; pct (value t m) ]) members in
          let sum = List.fold_left (fun acc m -> acc +. value t m) 0. members in
          member_rows @ [ [ group; "SUM"; pct sum ] ])
        groups
    in
    Text_table.render ~headers:[ "Group"; "Component"; "%" ] rows
