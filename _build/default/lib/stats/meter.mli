(** Windowed event-rate meter (throughput measurement).

    Counts events into fixed time bins so a steady-state rate can be
    computed over a measurement window that excludes warmup and drain —
    the paper averages runs "after the system had stabilized" (§6.2.1). *)

type t

val create : ?bin:Sim.Sim_time.span -> unit -> t
(** [bin] is the accumulation granularity (default 100 ms). *)

val add : t -> at:Sim.Sim_time.t -> int -> unit
(** Records [count] events at instant [at]. *)

val total : t -> int
(** All events ever recorded. *)

val rate : t -> from_:Sim.Sim_time.t -> until:Sim.Sim_time.t -> float
(** Events per second over the window (bins fully or partially inside the
    window are included; window clamped to recorded bins). Returns [0.]
    on an empty window. *)

val count_in : t -> from_:Sim.Sim_time.t -> until:Sim.Sim_time.t -> int
(** Events recorded inside the window. *)

val first_event : t -> Sim.Sim_time.t option
(** Instant of the first recorded event's bin. *)
