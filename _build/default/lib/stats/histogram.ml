(* Buckets: value v (ns) lands in floor (log v / log gamma) - offset, with
   gamma = 1.04 (~2% relative error, matches the quantile guarantee). *)

let gamma = 1.04
let log_gamma = log gamma
let min_ns = 1_000.0 (* 1 us: everything below lands in bucket 0 *)
let bucket_count = 700 (* gamma^700 * 1us ~ 8.4e14 ns ~ 10 days *)

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum_ns : float;
  mutable min_ns : float;
  mutable max_ns : float;
}

let create () =
  { buckets = Array.make bucket_count 0;
    n = 0;
    sum_ns = 0.;
    min_ns = infinity;
    max_ns = neg_infinity }

let index_of_ns v =
  if v < min_ns then 0
  else
    let i = int_of_float (log (v /. min_ns) /. log_gamma) + 1 in
    if i >= bucket_count then bucket_count - 1 else i

let bucket_mid_ns i =
  if i = 0 then min_ns /. 2.
  else min_ns *. (gamma ** (float_of_int i -. 0.5))

let add t span =
  let v = if Int64.compare span 0L < 0 then 0. else Int64.to_float span in
  t.buckets.(index_of_ns v) <- t.buckets.(index_of_ns v) + 1;
  t.n <- t.n + 1;
  t.sum_ns <- t.sum_ns +. v;
  if v < t.min_ns then t.min_ns <- v;
  if v > t.max_ns then t.max_ns <- v

let merge a b =
  let t = create () in
  Array.iteri (fun i c -> t.buckets.(i) <- c + b.buckets.(i)) a.buckets;
  t.n <- a.n + b.n;
  t.sum_ns <- a.sum_ns +. b.sum_ns;
  t.min_ns <- Float.min a.min_ns b.min_ns;
  t.max_ns <- Float.max a.max_ns b.max_ns;
  t

let count t = t.n
let mean t = if t.n = 0 then nan else t.sum_ns /. float_of_int t.n /. 1e9
let min_value t = if t.n = 0 then nan else t.min_ns /. 1e9
let max_value t = if t.n = 0 then nan else t.max_ns /. 1e9

let quantile t q =
  assert (0. <= q && q <= 1.);
  if t.n = 0 then nan
  else begin
    let rank = q *. float_of_int t.n in
    let rec walk i acc =
      if i >= bucket_count then max_value t
      else
        let acc = acc + t.buckets.(i) in
        if float_of_int acc >= rank then
          (* Clamp the bucket estimate into the true observed range. *)
          Float.min (t.max_ns /. 1e9) (Float.max (t.min_ns /. 1e9) (bucket_mid_ns i /. 1e9))
        else walk (i + 1) acc
    in
    walk 0 0
  end

let pp_summary fmt t =
  if t.n = 0 then Format.fprintf fmt "n=0"
  else
    Format.fprintf fmt "n=%d mean=%.4fs p50=%.4fs p99=%.4fs max=%.4fs" t.n (mean t)
      (quantile t 0.5) (quantile t 0.99) (max_value t)
