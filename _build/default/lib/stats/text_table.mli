(** Aligned plain-text tables for bench output. *)

val render : headers:string list -> string list list -> string
(** [render ~headers rows] pads each column to its widest cell and joins
    rows with newlines, with a separator rule under the header. Rows
    shorter than the header are right-padded with empty cells. *)

val render_kv : (string * string) list -> string
(** Two-column key/value rendering without a header. *)
