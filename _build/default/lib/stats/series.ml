type t = { name : string; mutable rev_points : (float * float) list }

let create ~name = { name; rev_points = [] }
let name t = t.name
let add t ~x ~y = t.rev_points <- (x, y) :: t.rev_points
let points t = List.rev t.rev_points

let y_at t ~x =
  List.find_opt (fun (px, _) -> px = x) (points t) |> Option.map snd

let default_fmt v =
  if Float.is_nan v then "nan"
  else if Float.abs v >= 10000. then Printf.sprintf "%.3e" v
  else if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let render_table ?(x_label = "x") ?(fmt_x = default_fmt) ?(fmt_y = default_fmt) series =
  let xs =
    List.concat_map (fun s -> List.map fst (points s)) series
    |> List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) []
    |> List.rev
  in
  let headers = x_label :: List.map name series in
  let rows =
    List.map
      (fun x ->
        fmt_x x
        :: List.map
             (fun s -> match y_at s ~x with Some y -> fmt_y y | None -> "-")
             series)
      xs
  in
  Text_table.render ~headers rows
