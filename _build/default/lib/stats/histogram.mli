(** Latency histogram with geometric buckets.

    Records durations (nanosecond spans) into log-spaced buckets from 1 µs
    to ~17 minutes, giving ~2% relative quantile error at O(1) memory —
    the standard approach for high-volume latency measurement. Exact sum,
    count, min and max are tracked alongside. *)

type t

val create : unit -> t

val add : t -> Sim.Sim_time.span -> unit
(** Records one duration. Negative durations are clamped to zero. *)

val merge : t -> t -> t
(** A histogram holding both inputs' samples. *)

val count : t -> int
val mean : t -> float
(** Mean in seconds; [nan] when empty. *)

val min_value : t -> float
(** Smallest recorded duration in seconds; [nan] when empty. *)

val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]], in seconds, with ~2% relative
    error; [nan] when empty. *)

val pp_summary : Format.formatter -> t -> unit
(** "n=…, mean=…, p50=…, p99=…" one-liner. *)
