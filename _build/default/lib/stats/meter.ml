open Sim

type t = {
  bin : Sim_time.span;
  mutable bins : int array; (* counts, indexed by time / bin *)
  mutable total : int;
  mutable first : Sim_time.t option;
}

let create ?(bin = Sim_time.ms 100) () =
  assert (Int64.compare bin 0L > 0);
  { bin; bins = Array.make 64 0; total = 0; first = None }

let index_of t at = Int64.to_int (Int64.div at t.bin)

let ensure t idx =
  let len = Array.length t.bins in
  if idx >= len then begin
    let nlen = max (idx + 1) (2 * len) in
    let nbins = Array.make nlen 0 in
    Array.blit t.bins 0 nbins 0 len;
    t.bins <- nbins
  end

let add t ~at count =
  let idx = index_of t at in
  ensure t idx;
  t.bins.(idx) <- t.bins.(idx) + count;
  t.total <- t.total + count;
  match t.first with
  | None -> t.first <- Some (Int64.mul (Int64.of_int idx) t.bin)
  | Some f ->
    let bin_start = Int64.mul (Int64.of_int idx) t.bin in
    if Sim_time.compare bin_start f < 0 then t.first <- Some bin_start

let count_in t ~from_ ~until =
  if Sim_time.compare until from_ <= 0 then 0
  else begin
    (* Bins whose start lies in [from_, until): a bin starting exactly at
       [until] is excluded so adjacent windows do not double count. *)
    let lo = index_of t from_ and hi = index_of t (Int64.pred until) in
    let hi = min hi (Array.length t.bins - 1) in
    let acc = ref 0 in
    for i = max lo 0 to hi do
      acc := !acc + t.bins.(i)
    done;
    !acc
  end

let rate t ~from_ ~until =
  let dt = Sim_time.to_sec (Sim_time.( - ) until from_) in
  if dt <= 0. then 0. else float_of_int (count_in t ~from_ ~until) /. dt

let total t = t.total
let first_event t = t.first
