lib/stats/text_table.mli:
