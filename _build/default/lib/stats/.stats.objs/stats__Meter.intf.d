lib/stats/meter.mli: Sim
