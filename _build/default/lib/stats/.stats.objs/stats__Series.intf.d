lib/stats/series.mli:
