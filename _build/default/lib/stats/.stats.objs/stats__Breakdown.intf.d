lib/stats/breakdown.mli:
