lib/stats/histogram.ml: Array Float Format Int64
