lib/stats/series.ml: Float List Option Printf Text_table
