lib/stats/meter.ml: Array Int64 Sim Sim_time
