lib/stats/breakdown.ml: Hashtbl List Printf Text_table
