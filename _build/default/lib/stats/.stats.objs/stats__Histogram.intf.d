lib/stats/histogram.mli: Format Sim
