lib/stats/text_table.ml: List Printf String
