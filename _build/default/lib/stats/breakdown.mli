(** Named accumulators with percentage rendering.

    The latency breakdown of Table 3 and the bandwidth breakdown of
    Table 4 are percentages of named components; this collects the raw
    quantities and renders the shares. *)

type t

val create : unit -> t

val add : t -> string -> float -> unit
(** Accumulates [amount] under the component name. *)

val value : t -> string -> float
(** Current accumulated amount (0 for unknown components). *)

val total : t -> float

val share : t -> string -> float
(** Component's fraction of the total, in [\[0, 1\]]; [nan] if total is 0. *)

val components : t -> (string * float) list
(** Accumulated values in insertion order of first occurrence. *)

val render_percent : ?grouping:(string * string list) list -> t -> string
(** Percentage table. With [grouping], components are organized under
    group headers with a SUM row per group (Table 3/4 layout); ungrouped
    components are omitted. *)
