(* Tests for the closed-form analysis library. *)

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

(* -- Binomial ------------------------------------------------------------- *)

let test_log_factorial () =
  checkf 1e-12 "0!" 0. (Analysis.Binomial.log_factorial 0);
  checkf 1e-12 "1!" 0. (Analysis.Binomial.log_factorial 1);
  checkf 1e-9 "5!" (log 120.) (Analysis.Binomial.log_factorial 5)

let test_log_choose () =
  checkf 1e-9 "C(5,2)" (log 10.) (Analysis.Binomial.log_choose 5 2);
  checkb "out of range" true (Analysis.Binomial.log_choose 5 6 = neg_infinity);
  checkb "negative" true (Analysis.Binomial.log_choose 5 (-1) = neg_infinity)

let test_pmf_sums_to_one () =
  let n = 40 and p = 0.3 in
  let sum = ref 0. in
  for k = 0 to n do
    sum := !sum +. Analysis.Binomial.pmf ~n ~p k
  done;
  checkf 1e-9 "sums to 1" 1.0 !sum

let test_cdf_tail_complementary () =
  let n = 25 and p = 0.2 in
  for k = 0 to n do
    checkf 1e-9 "cdf + tail = 1" 1.0
      (Analysis.Binomial.cdf ~n ~p k +. Analysis.Binomial.tail_above ~n ~p k)
  done

let prop_tail_monotone =
  QCheck.Test.make ~name:"tail decreases in k" ~count:50
    QCheck.(pair (int_range 4 200) (float_range 0.05 0.45))
    (fun (n, p) ->
      let rec go k = k >= n ||
        (Analysis.Binomial.tail_above ~n ~p (k + 1) <= Analysis.Binomial.tail_above ~n ~p k +. 1e-12
         && go (k + 1))
      in
      go 0)

(* -- Shard probability vs the paper's Table 1 -------------------------------- *)

let near ~rel expected actual =
  Float.abs (actual -. expected) <= rel *. Float.max expected actual

let test_table1_values () =
  (* Spot checks against the published Table 1 (values are rounded to 3
     significant digits in the paper; allow 5% relative slack). *)
  let cases_quarter =
    [ (16, 1.90e-1); (32, 1.54e-1); (64, 5.96e-2); (128, 1.82e-2); (256, 1.30e-3);
      (400, 8.68e-5); (600, 2.97e-6) ]
  in
  List.iter
    (fun (n, expected) ->
      let p = Analysis.Shard_prob.failure_probability ~rho:0.25 ~n in
      checkb (Printf.sprintf "rho=1/4 n=%d (got %.3e)" n p) true (near ~rel:0.05 expected p))
    cases_quarter;
  let cases_fifth =
    [ (16, 8.17e-2); (32, 4.11e-2); (64, 5.10e-3); (128, 2.18e-4); (256, 2.44e-7);
      (400, 1.77e-10); (600, 1.41e-14) ]
  in
  List.iter
    (fun (n, expected) ->
      let p = Analysis.Shard_prob.failure_probability ~rho:0.20 ~n in
      checkb (Printf.sprintf "rho=1/5 n=%d (got %.3e)" n p) true (near ~rel:0.05 expected p))
    cases_fifth

let test_min_shard_size () =
  let n = Analysis.Shard_prob.min_shard_size ~rho:0.25 ~target:1e-3 in
  checkb "hundreds needed at rho=1/4" true (n > 200 && n < 400);
  checkb "achieves target" true (Analysis.Shard_prob.failure_probability ~rho:0.25 ~n <= 1e-3);
  checkb "minimal" true (Analysis.Shard_prob.failure_probability ~rho:0.25 ~n:(n - 1) > 1e-3)

(* -- Delivery models ----------------------------------------------------------- *)

let test_delivery_direct_vs_leopard () =
  let d = Analysis.Delivery_models.direct_leader ~n:300 in
  let l = Analysis.Delivery_models.leopard_decoupled ~n:300 ~alpha_bytes:512_000. ~beta:32. in
  checkf 1e-9 "direct leader n-1" 299. d.Analysis.Delivery_models.leader_egress_per_bit;
  checkb "leopard leader tiny" true (l.Analysis.Delivery_models.leader_egress_per_bit < 0.1);
  checkf 1e-9 "leopard replica carries 1x" 1. l.Analysis.Delivery_models.replica_egress_per_bit

let test_delivery_erasure () =
  let e = Analysis.Delivery_models.erasure_coded ~n:300 ~code_rate_inv:2. ~byz_fraction:0.3 in
  (* §2: both leader and non-leader pay c x the payload, plus coding CPU. *)
  checkf 1e-9 "leader pays c" 2. e.Analysis.Delivery_models.leader_egress_per_bit;
  checkf 1e-9 "replica pays c" 2. e.Analysis.Delivery_models.replica_egress_per_bit;
  checkb "cpu overhead" true (e.Analysis.Delivery_models.cpu_overhead_per_bit > 0.)

let test_delivery_tree_fragility () =
  let honest = Analysis.Delivery_models.broadcast_tree ~n:127 ~fanout:2 ~byz_fraction:0. in
  checkf 1e-9 "full coverage without faults" 1.0 honest.Analysis.Delivery_models.coverage;
  checkb "log depth" true (honest.Analysis.Delivery_models.delivery_hops >= 6.);
  let faulty = Analysis.Delivery_models.broadcast_tree ~n:127 ~fanout:2 ~byz_fraction:0.33 in
  (* §2: a Byzantine inner node severs its subtree — coverage collapses. *)
  checkb "coverage collapses under faults" true
    (faulty.Analysis.Delivery_models.coverage < 0.6)

(* -- Latency model -------------------------------------------------------------- *)

let test_latency_model_components () =
  let m = Analysis.Latency_model.leopard ~n:64 ~load:1.5e5 ~alpha:2000 ~bft_size:100 ~delta:0.001 in
  (* db fill: 0.5 * 2000/(150000/63) = 0.42 s; bft fill: 0.5 * 200000/150000 = 0.67 s *)
  checkf 0.01 "datablock fill" 0.42 m.Analysis.Latency_model.datablock_fill;
  checkf 0.01 "bftblock fill" 0.667 m.Analysis.Latency_model.bftblock_fill;
  checkf 1e-9 "network" 0.007 m.Analysis.Latency_model.network;
  checkb "total sums" true
    (Float.abs
       (m.Analysis.Latency_model.total
       -. (m.Analysis.Latency_model.datablock_fill +. m.Analysis.Latency_model.bftblock_fill
          +. m.Analysis.Latency_model.network))
     < 1e-9)

let test_latency_model_grows_with_n () =
  (* With Table 2's alpha/BFTsize growing in n, modeled latency grows —
     the Fig 9 (right) shape. *)
  let at n =
    let alpha, bft_size = Core.Config.paper_batch_sizes ~n in
    (Analysis.Latency_model.leopard ~n ~load:1.5e5 ~alpha ~bft_size ~delta:0.001)
      .Analysis.Latency_model.total
  in
  checkb "32 < 128 < 600" true (at 32 < at 128 && at 128 < at 600)

let test_latency_model_matches_simulation () =
  (* The model should land within ~2x of a measured run (it ignores
     queueing and the response path). *)
  let n = 16 and load = 10_000. and alpha = 200 and bft_size = 10 in
  let cfg = Core.Config.make ~n ~alpha ~bft_size ~cost:Crypto.Cost_model.free () in
  let sp =
    Core.Runner.spec ~cfg ~load ~duration:(Sim.Sim_time.s 15) ~warmup:(Sim.Sim_time.s 3) ()
  in
  let r = Core.Runner.run sp in
  let measured = Stats.Histogram.quantile r.Core.Runner.latency 0.5 in
  let modeled =
    (Analysis.Latency_model.leopard ~n ~load ~alpha ~bft_size ~delta:0.001)
      .Analysis.Latency_model.total
  in
  checkb
    (Printf.sprintf "model %.3f vs measured %.3f within 2x" modeled measured)
    true
    (measured > 0.5 *. modeled && measured < 2. *. modeled)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "analysis"
    [ ( "binomial",
        [ Alcotest.test_case "log factorial" `Quick test_log_factorial;
          Alcotest.test_case "log choose" `Quick test_log_choose;
          Alcotest.test_case "pmf sums to one" `Quick test_pmf_sums_to_one;
          Alcotest.test_case "cdf/tail complementary" `Quick test_cdf_tail_complementary ]
        @ qsuite [ prop_tail_monotone ] );
      ( "shard probability",
        [ Alcotest.test_case "Table 1 values" `Quick test_table1_values;
          Alcotest.test_case "min shard size" `Quick test_min_shard_size ] );
      ( "delivery models",
        [ Alcotest.test_case "direct vs leopard" `Quick test_delivery_direct_vs_leopard;
          Alcotest.test_case "erasure coding cost" `Quick test_delivery_erasure;
          Alcotest.test_case "broadcast tree fragility" `Quick test_delivery_tree_fragility ] );
      ( "latency model",
        [ Alcotest.test_case "components" `Quick test_latency_model_components;
          Alcotest.test_case "grows with n" `Quick test_latency_model_grows_with_n;
          Alcotest.test_case "matches simulation" `Quick test_latency_model_matches_simulation ] ) ]
