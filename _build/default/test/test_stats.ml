(* Unit and property tests for the measurement library. *)

open Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf eps = Alcotest.(check (float eps))

(* -- Histogram -------------------------------------------------------------- *)

let test_histogram_empty () =
  let h = Stats.Histogram.create () in
  checki "count" 0 (Stats.Histogram.count h);
  checkb "mean nan" true (Float.is_nan (Stats.Histogram.mean h));
  checkb "quantile nan" true (Float.is_nan (Stats.Histogram.quantile h 0.5))

let test_histogram_exact_stats () =
  let h = Stats.Histogram.create () in
  List.iter (fun ms -> Stats.Histogram.add h (Sim_time.ms ms)) [ 10; 20; 30; 40 ];
  checki "count" 4 (Stats.Histogram.count h);
  checkf 1e-9 "mean" 0.025 (Stats.Histogram.mean h);
  checkf 1e-9 "min" 0.010 (Stats.Histogram.min_value h);
  checkf 1e-9 "max" 0.040 (Stats.Histogram.max_value h)

let prop_histogram_quantile_error =
  QCheck.Test.make ~name:"quantile within ~4% of exact" ~count:50
    QCheck.(pair int64 (int_range 10 500))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let h = Stats.Histogram.create () in
      let samples = Array.init n (fun _ -> 1_000 + Rng.int rng 10_000_000) in
      Array.iter (fun us -> Stats.Histogram.add h (Sim_time.us us)) samples;
      Array.sort compare samples;
      let q = 0.9 in
      (* Rank conventions differ by up to one order statistic; accept the
         estimate between the neighbours of the exact rank, with the
         bucket's ~4% relative slack. *)
      let idx = max 0 (int_of_float (q *. float_of_int n) - 1) in
      let lower = float_of_int samples.(max 0 (idx - 1)) /. 1e6 in
      let upper = float_of_int samples.(min (n - 1) (idx + 1)) /. 1e6 in
      let est = Stats.Histogram.quantile h q in
      est >= lower *. 0.95 && est <= upper *. 1.05)

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.add a (Sim_time.ms 10);
  Stats.Histogram.add b (Sim_time.ms 30);
  let m = Stats.Histogram.merge a b in
  checki "merged count" 2 (Stats.Histogram.count m);
  checkf 1e-9 "merged mean" 0.020 (Stats.Histogram.mean m)

let test_histogram_negative_clamped () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h (-5L);
  checkf 1e-9 "clamped to 0" 0. (Stats.Histogram.mean h)

(* -- Meter ------------------------------------------------------------------ *)

let test_meter_rate () =
  let m = Stats.Meter.create ~bin:(Sim_time.ms 100) () in
  (* 100 events/s for 10 s *)
  for i = 0 to 99 do
    Stats.Meter.add m ~at:(Sim_time.ms (i * 100)) 10
  done;
  checki "total" 1000 (Stats.Meter.total m);
  checkf 1.0 "steady rate" 100.
    (Stats.Meter.rate m ~from_:(Sim_time.s 2) ~until:(Sim_time.s 8));
  checki "window count" 100 (Stats.Meter.count_in m ~from_:(Sim_time.s 0) ~until:(Sim_time.ms 999))

let test_meter_empty_window () =
  let m = Stats.Meter.create () in
  Stats.Meter.add m ~at:Sim_time.zero 5;
  checkf 1e-9 "inverted window" 0. (Stats.Meter.rate m ~from_:(Sim_time.s 5) ~until:(Sim_time.s 5))

let test_meter_first_event () =
  let m = Stats.Meter.create ~bin:(Sim_time.ms 100) () in
  checkb "none" true (Stats.Meter.first_event m = None);
  Stats.Meter.add m ~at:(Sim_time.ms 250) 1;
  (match Stats.Meter.first_event m with
   | Some t -> Alcotest.(check int64) "bin start" (Sim_time.ms 200) t
   | None -> Alcotest.fail "expected first event")

(* -- Series ------------------------------------------------------------------ *)

let test_series () =
  let s = Stats.Series.create ~name:"tput" in
  Stats.Series.add s ~x:4. ~y:100.;
  Stats.Series.add s ~x:8. ~y:50.;
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "points" [ (4., 100.); (8., 50.) ] (Stats.Series.points s);
  checkb "y_at hit" true (Stats.Series.y_at s ~x:8. = Some 50.);
  checkb "y_at miss" true (Stats.Series.y_at s ~x:9. = None)

let test_series_render () =
  let a = Stats.Series.create ~name:"A" and b = Stats.Series.create ~name:"B" in
  Stats.Series.add a ~x:1. ~y:10.;
  Stats.Series.add a ~x:2. ~y:20.;
  Stats.Series.add b ~x:1. ~y:1.;
  let out = Stats.Series.render_table ~x_label:"n" [ a; b ] in
  checkb "has header" true (String.length out > 0);
  (* row for x=2 has a dash for the missing B value *)
  let lines = String.split_on_char '\n' out in
  checkb "missing rendered as dash" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '2' && String.contains l '-') lines)

(* -- Breakdown ----------------------------------------------------------------- *)

let test_breakdown () =
  let b = Stats.Breakdown.create () in
  Stats.Breakdown.add b "x" 1.;
  Stats.Breakdown.add b "y" 3.;
  Stats.Breakdown.add b "x" 1.;
  checkf 1e-9 "value" 2. (Stats.Breakdown.value b "x");
  checkf 1e-9 "total" 5. (Stats.Breakdown.total b);
  checkf 1e-9 "share" 0.4 (Stats.Breakdown.share b "x");
  checkb "unknown zero" true (Stats.Breakdown.value b "zzz" = 0.);
  Alcotest.(check (list (pair string (float 1e-9))))
    "insertion order" [ ("x", 2.); ("y", 3.) ] (Stats.Breakdown.components b)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_breakdown_render () =
  let b = Stats.Breakdown.create () in
  Stats.Breakdown.add b "gen" 1.;
  Stats.Breakdown.add b "net" 3.;
  let out = Stats.Breakdown.render_percent ~grouping:[ ("Prep", [ "gen"; "net" ]) ] b in
  checkb "renders SUM" true (contains_substring out "SUM");
  checkb "renders 75%" true (contains_substring out "75.00%")

(* -- Text table ------------------------------------------------------------------ *)

let test_text_table () =
  let out =
    Stats.Text_table.render ~headers:[ "n"; "throughput" ]
      [ [ "32"; "200000" ]; [ "600"; "99000" ] ]
  in
  let lines = String.split_on_char '\n' out in
  checki "rows + header + rule" 4 (List.length lines);
  checkb "aligned" true
    (String.length (List.nth lines 0) >= String.length "n  throughput")

let test_text_table_kv () =
  let out = Stats.Text_table.render_kv [ ("alpha", "2000"); ("k", "32") ] in
  checkb "two lines" true (List.length (String.split_on_char '\n' out) = 2)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "stats"
    [ ( "histogram",
        [ Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "exact stats" `Quick test_histogram_exact_stats;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "negative clamped" `Quick test_histogram_negative_clamped ]
        @ qsuite [ prop_histogram_quantile_error ] );
      ( "meter",
        [ Alcotest.test_case "rate" `Quick test_meter_rate;
          Alcotest.test_case "empty window" `Quick test_meter_empty_window;
          Alcotest.test_case "first event" `Quick test_meter_first_event ] );
      ( "series",
        [ Alcotest.test_case "points" `Quick test_series;
          Alcotest.test_case "render" `Quick test_series_render ] );
      ( "breakdown",
        [ Alcotest.test_case "accumulate" `Quick test_breakdown;
          Alcotest.test_case "render percent" `Quick test_breakdown_render ] );
      ( "text table",
        [ Alcotest.test_case "render" `Quick test_text_table;
          Alcotest.test_case "kv" `Quick test_text_table_kv ] ) ]
