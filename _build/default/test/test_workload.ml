(* Unit tests for the client workload substrate. *)

open Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* -- Request ---------------------------------------------------------------- *)

let mk ?(id = 1) ?(count = 10) ?(size = 128) () =
  Workload.Request.make ~id ~count ~size_each:size ~born:Sim_time.zero ()

let test_request_sizes () =
  let b = mk () in
  checki "payload" 1280 (Workload.Request.payload_bytes b);
  checkb "wire > payload" true (Workload.Request.wire_bytes b > 1280)

let test_request_confirmation_shared_with_resend () =
  let b = mk () in
  let copy = Workload.Request.resend_of b in
  checkb "copy tagged" true copy.Workload.Request.resend;
  checkb "not confirmed" false (Workload.Request.is_confirmed b);
  Workload.Request.mark_confirmed copy;
  checkb "original confirmed through copy" true (Workload.Request.is_confirmed b)

let test_request_hash_distinct () =
  let a = mk ~id:1 () and b = mk ~id:2 () in
  checkb "distinct ids distinct hashes" false
    (Crypto.Hash.equal (Workload.Request.hash a) (Workload.Request.hash b))

(* -- Assign ------------------------------------------------------------------ *)

let test_assign_excludes_leader () =
  for key = 0 to 50 do
    let rs = Workload.Assign.replicas_for ~n:10 ~s:3 ~leader:4 ~key in
    checki "s replicas" 3 (List.length rs);
    checki "distinct" 3 (List.length (List.sort_uniq Int.compare rs));
    checkb "no leader" false (List.mem 4 rs);
    List.iter (fun r -> checkb "range" true (r >= 0 && r < 10)) rs
  done

let test_assign_deterministic () =
  let a = Workload.Assign.replicas_for ~n:31 ~s:5 ~leader:0 ~key:123 in
  let b = Workload.Assign.replicas_for ~n:31 ~s:5 ~leader:0 ~key:123 in
  checkb "same key same answer" true (a = b)

let test_honest_hit_probability () =
  (* The paper: s = 9 gives > 99.99% that one replica is honest when
     fewer than 1/3 of candidates are Byzantine. *)
  let p = Workload.Assign.honest_hit_probability ~s:9 ~f:333 ~n:1000 in
  checkb "paper's 99.99% claim" true (p > 0.9999);
  Alcotest.(check (float 1e-9)) "s > f is certain" 1.0
    (Workload.Assign.honest_hit_probability ~s:4 ~f:3 ~n:10);
  let p1 = Workload.Assign.honest_hit_probability ~s:1 ~f:3 ~n:10 in
  Alcotest.(check (float 1e-9)) "s=1 exact" (1. -. (3. /. 9.)) p1

(* -- Generator ----------------------------------------------------------------- *)

let test_generator_rate_and_targets () =
  let e = Engine.create () in
  let received = Hashtbl.create 8 in
  let submitted = ref 0 in
  let gen =
    Workload.Generator.start e ~rate:1000. ~payload:64 ~targets:[ 1; 2; 3 ]
      ~inject:(fun ~dst ~size:_ cb ->
        Hashtbl.replace received dst (1 + Option.value ~default:0 (Hashtbl.find_opt received dst));
        cb ())
      ~submit:(fun ~target:_ b -> submitted := !submitted + b.Workload.Request.count)
      ~until:(Sim_time.s 2) ()
  in
  Engine.run ~until:(Sim_time.s 3) e;
  let offered = Workload.Generator.offered gen in
  checkb "~2000 requests" true (offered >= 1900 && offered <= 2100);
  checki "all submitted" offered !submitted;
  checki "three targets hit" 3 (Hashtbl.length received)

let test_generator_stop () =
  let e = Engine.create () in
  let gen =
    Workload.Generator.start e ~rate:1000. ~payload:64 ~targets:[ 0 ]
      ~inject:(fun ~dst:_ ~size:_ cb -> cb ())
      ~submit:(fun ~target:_ _ -> ())
      ()
  in
  ignore (Engine.schedule e ~delay:(Sim_time.s 1) (fun () -> Workload.Generator.stop gen));
  Engine.run ~until:(Sim_time.s 5) e;
  let offered = Workload.Generator.offered gen in
  checkb "stopped early" true (offered < 1200)

let test_generator_batches_recorded () =
  let e = Engine.create () in
  let gen =
    Workload.Generator.start e ~rate:100. ~payload:64 ~targets:[ 0 ]
      ~inject:(fun ~dst:_ ~size:_ cb -> cb ())
      ~submit:(fun ~target:_ _ -> ())
      ~until:(Sim_time.s 1) ()
  in
  Engine.run ~until:(Sim_time.s 2) e;
  let batches = Workload.Generator.batches gen in
  checkb "batches recorded" true (List.length batches > 0);
  let total = List.fold_left (fun a b -> a + b.Workload.Request.count) 0 batches in
  checki "batches cover offered" (Workload.Generator.offered gen) total

let test_generator_make_batch () =
  let e = Engine.create () in
  let gen =
    Workload.Generator.start e ~rate:0. ~payload:64 ~targets:[ 0 ]
      ~inject:(fun ~dst:_ ~size:_ cb -> cb ())
      ~submit:(fun ~target:_ _ -> ())
      ()
  in
  let id0 = Workload.Generator.next_batch_id gen in
  let b = Workload.Generator.make_batch gen ~at:Sim_time.zero ~count:5 () in
  checki "id assigned" id0 b.Workload.Request.id;
  checki "offered counted" 5 (Workload.Generator.offered gen);
  checki "next id advanced" (id0 + 1) (Workload.Generator.next_batch_id gen)

let () =
  Alcotest.run "workload"
    [ ( "request",
        [ Alcotest.test_case "sizes" `Quick test_request_sizes;
          Alcotest.test_case "resend shares confirmation" `Quick
            test_request_confirmation_shared_with_resend;
          Alcotest.test_case "hash distinct" `Quick test_request_hash_distinct ] );
      ( "assign",
        [ Alcotest.test_case "excludes leader" `Quick test_assign_excludes_leader;
          Alcotest.test_case "deterministic" `Quick test_assign_deterministic;
          Alcotest.test_case "honest hit probability" `Quick test_honest_hit_probability ] );
      ( "generator",
        [ Alcotest.test_case "rate and targets" `Quick test_generator_rate_and_targets;
          Alcotest.test_case "stop" `Quick test_generator_stop;
          Alcotest.test_case "batches recorded" `Quick test_generator_batches_recorded;
          Alcotest.test_case "make_batch" `Quick test_generator_make_batch ] ) ]
