test/test_invariants.ml: Alcotest Array Buffer Core Crypto Engine Hashtbl List Printf QCheck QCheck_alcotest Rng Sim Sim_time String Workload
