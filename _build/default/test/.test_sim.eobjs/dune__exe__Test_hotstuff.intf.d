test/test_hotstuff.mli:
