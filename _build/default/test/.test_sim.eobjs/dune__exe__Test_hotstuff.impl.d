test/test_hotstuff.ml: Alcotest Crypto Hotstuff Net Option Sim Sim_time Stats
