test/test_workload.ml: Alcotest Crypto Engine Hashtbl Int List Option Sim Sim_time Workload
