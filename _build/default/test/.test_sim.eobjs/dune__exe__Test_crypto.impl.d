test/test_crypto.ml: Alcotest Array Bytes Crypto Fun Gen Int64 List Printf QCheck QCheck_alcotest Sim String
