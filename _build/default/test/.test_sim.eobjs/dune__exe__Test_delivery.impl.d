test/test_delivery.ml: Alcotest Array Bytes Char Crypto Delivery List Net QCheck QCheck_alcotest Sim String
