test/test_net.ml: Alcotest Array Engine Int64 List Net Option Rng Sim Sim_time
