test/test_core.ml: Alcotest Array Core Crypto Float List Net Printf Rng Sim Sim_time Workload
