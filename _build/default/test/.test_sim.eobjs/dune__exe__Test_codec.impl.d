test/test_codec.ml: Alcotest Array Core Crypto Int64 List QCheck QCheck_alcotest Sim String Workload
