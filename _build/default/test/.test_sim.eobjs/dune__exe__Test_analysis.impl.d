test/test_analysis.ml: Alcotest Analysis Core Crypto Float List Printf QCheck QCheck_alcotest Sim Stats
