test/test_pbft.ml: Alcotest Crypto Net Option Pbft Sim Sim_time
