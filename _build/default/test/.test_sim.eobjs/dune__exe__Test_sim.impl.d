test/test_sim.ml: Alcotest Engine Fun Heap Int Int64 List QCheck QCheck_alcotest Rng Sim Sim_time Trace
