test/test_hybrid.ml: Alcotest Crypto Hotstuff Hybrid List QCheck QCheck_alcotest Sim Sim_time Stats
