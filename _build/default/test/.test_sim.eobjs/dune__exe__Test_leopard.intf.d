test/test_leopard.mli:
