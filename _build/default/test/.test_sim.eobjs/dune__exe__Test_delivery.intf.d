test/test_delivery.mli:
