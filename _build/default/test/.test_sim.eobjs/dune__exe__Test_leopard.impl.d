test/test_leopard.ml: Alcotest Array Core Crypto Engine List Net QCheck QCheck_alcotest Rng Sim Sim_time Stats
