(* Tests for the PBFT-style all-to-all baseline. *)

open Sim

let checkb = Alcotest.(check bool)

let cfg ?(n = 4) () =
  Pbft.make_cfg ~n ~batch_size:50 ~propose_timeout:(Sim_time.ms 20)
    ~cost:Crypto.Cost_model.free ()

let spec ?(load = 2000.) ?silent cfg =
  Pbft.spec ~cfg ~load ~duration:(Sim_time.s 8) ~warmup:(Sim_time.s 2)
    ~silent:(Option.value silent ~default:0) ()

let test_progress_and_safety () =
  let r = Pbft.run (spec (cfg ())) in
  checkb "confirms requests" true (r.Pbft.confirmed > 0);
  checkb "safety" true r.Pbft.safety_ok;
  checkb "most confirmed" true (r.Pbft.confirmed > r.Pbft.offered * 8 / 10)

let test_silent_f () =
  let c = cfg ~n:7 () in
  let r = Pbft.run (spec ~silent:c.Pbft.f (cfg ~n:7 ())) in
  checkb "live with f silent" true (r.Pbft.confirmed > 0);
  checkb "safety" true r.Pbft.safety_ok

let test_quadratic_votes_show_in_traffic () =
  (* All-to-all voting: total vote traffic grows ~n^2, visible already in
     leader-received vote bytes vs a linear-vote protocol. Here we just
     assert the all-to-all pattern produces progress at n = 10 and that
     throughput is lower than at n = 4 under the same constrained link. *)
  let slow = Net.Network.{ default_link with out_bps = mbps 30.; in_bps = mbps 30. } in
  let run n =
    Pbft.run
      (Pbft.spec ~cfg:(Pbft.make_cfg ~n ~batch_size:100 ~cost:Crypto.Cost_model.free ())
         ~link:slow ~load:20_000. ~duration:(Sim_time.s 10) ~warmup:(Sim_time.s 3) ~silent:0 ())
  in
  let r4 = run 4 and r10 = run 10 in
  checkb "n=10 slower than n=4" true (r10.Pbft.throughput < r4.Pbft.throughput);
  checkb "n=10 still progresses" true (r10.Pbft.confirmed > 0)

let () =
  Alcotest.run "pbft"
    [ ( "pbft",
        [ Alcotest.test_case "progress & safety" `Quick test_progress_and_safety;
          Alcotest.test_case "f silent" `Quick test_silent_f;
          Alcotest.test_case "scale degradation" `Slow test_quadratic_votes_show_in_traffic ] ) ]
