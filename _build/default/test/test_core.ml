(* Unit tests for the Leopard core data structures (no network). *)

open Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let rng = Rng.create 4242L

let batch =
  let next = ref 0 in
  fun ?(count = 5) () ->
    incr next;
    Workload.Request.make ~id:!next ~count ~size_each:128 ~born:Sim_time.zero ()

let keypair () = Crypto.Signature.keygen rng

(* -- Config ------------------------------------------------------------------ *)

let test_config_defaults () =
  let c = Core.Config.make ~n:64 () in
  checki "f" 21 c.Core.Config.f;
  checki "quorum" 43 (Core.Config.quorum c);
  checki "alpha (Table 2)" 2000 c.Core.Config.alpha;
  checki "bft_size (Table 2)" 100 c.Core.Config.bft_size;
  checki "reqs per block" 200_000 (Core.Config.requests_per_bftblock c)

let test_config_table2 () =
  Alcotest.(check (pair int int)) "n=128" (3000, 300) (Core.Config.paper_batch_sizes ~n:128);
  Alcotest.(check (pair int int)) "n=256" (4000, 300) (Core.Config.paper_batch_sizes ~n:256);
  Alcotest.(check (pair int int)) "n=400" (4000, 400) (Core.Config.paper_batch_sizes ~n:400);
  Alcotest.(check (pair int int)) "n=600" (4000, 400) (Core.Config.paper_batch_sizes ~n:600)

let test_config_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Config.make: n must be at least 4")
    (fun () -> ignore (Core.Config.make ~n:3 ()));
  Alcotest.check_raises "bad alpha" (Invalid_argument "Config.make: alpha must be positive")
    (fun () -> ignore (Core.Config.make ~n:4 ~alpha:0 ()))

let test_config_leader_rotation () =
  let c = Core.Config.make ~n:7 () in
  checki "view 1" 1 (Core.Config.leader_of_view c 1);
  checki "view 7" 0 (Core.Config.leader_of_view c 7);
  checki "view 8" 1 (Core.Config.leader_of_view c 8)

(* -- Datablock ----------------------------------------------------------------- *)

let test_datablock_create_verify () =
  let pk, sk = keypair () in
  let db = Core.Datablock.create ~sk ~creator:0 ~counter:1 ~now:Sim_time.zero [ batch (); batch () ] in
  checkb "verifies" true (Core.Datablock.verify ~pks:[| pk |] db);
  checki "req count" 10 db.Core.Datablock.req_count;
  checki "payload" 1280 db.Core.Datablock.payload_bytes;
  checkb "wire > payload" true (Core.Datablock.wire_size db > 1280)

let test_datablock_wrong_key_rejected () =
  let _, sk = keypair () in
  let other_pk, _ = keypair () in
  let db = Core.Datablock.create ~sk ~creator:0 ~counter:1 ~now:Sim_time.zero [ batch () ] in
  checkb "rejected" false (Core.Datablock.verify ~pks:[| other_pk |] db)

let test_datablock_bad_digest_rejected () =
  let pk, sk = keypair () in
  let db =
    Core.Datablock.forge_with_bad_digest ~sk ~creator:0 ~counter:1 ~now:Sim_time.zero [ batch () ]
  in
  checkb "integrity check fails" false (Core.Datablock.verify ~pks:[| pk |] db)

let test_datablock_hash_binds_content () =
  let _, sk = keypair () in
  let a = Core.Datablock.create ~sk ~creator:0 ~counter:1 ~now:Sim_time.zero [ batch () ] in
  let b = Core.Datablock.create ~sk ~creator:0 ~counter:1 ~now:Sim_time.zero [ batch () ] in
  (* same (creator, counter) but different requests => different digest
     and hence different hash *)
  checkb "different content different hash" false
    (Crypto.Hash.equal (Core.Datablock.hash a) (Core.Datablock.hash b))

(* -- Bftblock ----------------------------------------------------------------- *)

let some_links k = List.init k (fun i -> Crypto.Hash.of_string (Printf.sprintf "db%d" i))

let test_bftblock_hash_view_independent () =
  let b1 = Core.Bftblock.create ~view:1 ~sn:5 ~links:(some_links 3) in
  let b2 = Core.Bftblock.with_view b1 9 in
  checkb "same content hash across views" true
    (Crypto.Hash.equal (Core.Bftblock.hash b1) (Core.Bftblock.hash b2));
  checkb "equal_content" true (Core.Bftblock.equal_content b1 b2)

let test_bftblock_hash_binds_links () =
  let b1 = Core.Bftblock.create ~view:1 ~sn:5 ~links:(some_links 3) in
  let b2 = Core.Bftblock.create ~view:1 ~sn:5 ~links:(some_links 4) in
  checkb "links matter" false (Crypto.Hash.equal (Core.Bftblock.hash b1) (Core.Bftblock.hash b2));
  let b3 = Core.Bftblock.create ~view:1 ~sn:6 ~links:(some_links 3) in
  checkb "sn matters" false (Crypto.Hash.equal (Core.Bftblock.hash b1) (Core.Bftblock.hash b3))

let test_bftblock_dummy () =
  let d = Core.Bftblock.dummy ~view:2 ~sn:7 in
  checkb "dummy flag" true d.Core.Bftblock.dummy;
  checki "no links" 0 (List.length d.Core.Bftblock.links);
  let plain = Core.Bftblock.create ~view:2 ~sn:7 ~links:[] in
  checkb "dummy differs from empty block" false
    (Crypto.Hash.equal (Core.Bftblock.hash d) (Core.Bftblock.hash plain));
  checkb "wire size grows with links" true
    (Core.Bftblock.wire_size (Core.Bftblock.create ~view:1 ~sn:1 ~links:(some_links 10))
     > Core.Bftblock.wire_size d)

(* -- Mempool ------------------------------------------------------------------- *)

let test_mempool_take_fifo () =
  let m = Core.Mempool.create () in
  let b1 = batch ~count:3 () and b2 = batch ~count:3 () and b3 = batch ~count:3 () in
  List.iter (Core.Mempool.add m) [ b1; b2; b3 ];
  checki "pending" 9 (Core.Mempool.pending_requests m);
  checkb "has_at_least" true (Core.Mempool.has_at_least m 6);
  let taken = Core.Mempool.take m ~target:6 in
  checkb "fifo order" true (taken = [ b1; b2 ]);
  checki "remaining" 3 (Core.Mempool.pending_requests m)

let test_mempool_skips_confirmed () =
  let m = Core.Mempool.create () in
  let b1 = batch () and b2 = batch () in
  Core.Mempool.add m b1;
  Core.Mempool.add m b2;
  Workload.Request.mark_confirmed b1;
  let taken = Core.Mempool.take m ~target:5 in
  checkb "confirmed skipped" true (taken = [ b2 ]);
  checkb "empty now" true (Core.Mempool.is_empty m)

let test_mempool_oldest_age () =
  let m = Core.Mempool.create () in
  checkb "empty none" true (Core.Mempool.oldest_age m ~now:(Sim_time.s 1) = None);
  Core.Mempool.add m (Workload.Request.make ~id:9999 ~count:1 ~size_each:1 ~born:(Sim_time.ms 200) ());
  (match Core.Mempool.oldest_age m ~now:(Sim_time.ms 500) with
   | Some age -> Alcotest.(check int64) "age" (Sim_time.ms 300) age
   | None -> Alcotest.fail "expected age")

let test_mempool_take_partial () =
  let m = Core.Mempool.create () in
  Core.Mempool.add m (batch ~count:2 ());
  let taken = Core.Mempool.take m ~target:100 in
  checki "partial take returns what exists" 1 (List.length taken)

(* -- Datablock_pool ---------------------------------------------------------------- *)

let mk_db ?(creator = 0) ?(counter = 1) ?(batches = [ batch () ]) sk =
  Core.Datablock.create ~sk ~creator ~counter ~now:Sim_time.zero batches

let test_pool_accept_duplicate_equivocation () =
  let _, sk = keypair () in
  let pool = Core.Datablock_pool.create () in
  let db1 = mk_db sk in
  checkb "accepted" true (Core.Datablock_pool.add pool db1 = Core.Datablock_pool.Accepted);
  checkb "duplicate" true (Core.Datablock_pool.add pool db1 = Core.Datablock_pool.Duplicate);
  let db2 = mk_db ~batches:[ batch (); batch () ] sk in
  (match Core.Datablock_pool.add pool db2 with
   | Core.Datablock_pool.Equivocation first ->
     checkb "evidence is first copy" true
       (Crypto.Hash.equal (Core.Datablock.hash first) (Core.Datablock.hash db1))
   | _ -> Alcotest.fail "expected equivocation");
  checki "evidence recorded" 1 (List.length (Core.Datablock_pool.equivocations pool));
  (* The variant is stored (the leader may have linked it) but never
     enters this replica's own proposal path. *)
  checkb "equivocating copy stored for link resolution" true
    (Core.Datablock_pool.mem pool (Core.Datablock.hash db2));
  checki "but not pending" 1 (Core.Datablock_pool.pending pool)

let test_pool_pending_take () =
  let _, sk = keypair () in
  let pool = Core.Datablock_pool.create () in
  let dbs = List.init 5 (fun i -> mk_db ~counter:(i + 1) sk) in
  List.iter (fun db -> ignore (Core.Datablock_pool.add pool db)) dbs;
  checki "pending" 5 (Core.Datablock_pool.pending pool);
  let taken = Core.Datablock_pool.take_pending pool ~max:3 in
  checki "taken" 3 (List.length taken);
  checkb "oldest first" true
    (Core.Datablock.hash (List.hd taken) = Core.Datablock.hash (List.hd dbs));
  checki "pending after" 2 (Core.Datablock_pool.pending pool);
  (* taking again skips the linked ones *)
  checki "take rest" 2 (List.length (Core.Datablock_pool.take_pending pool ~max:10))

let test_pool_mark_linked_and_missing () =
  let _, sk = keypair () in
  let pool = Core.Datablock_pool.create () in
  let db = mk_db sk in
  ignore (Core.Datablock_pool.add pool db);
  let h = Core.Datablock.hash db in
  let ghost = Crypto.Hash.of_string "ghost" in
  Alcotest.(check (list string))
    "missing links" [ Crypto.Hash.to_hex ghost ]
    (List.map Crypto.Hash.to_hex (Core.Datablock_pool.missing_links pool [ h; ghost ]));
  Core.Datablock_pool.mark_linked pool h;
  checki "linked removed from pending" 0 (Core.Datablock_pool.pending pool)

let test_pool_relink_pending () =
  let _, sk = keypair () in
  let pool = Core.Datablock_pool.create () in
  let db1 = mk_db ~counter:1 sk and db2 = mk_db ~counter:2 sk in
  ignore (Core.Datablock_pool.add pool db1);
  ignore (Core.Datablock_pool.add pool db2);
  Core.Datablock_pool.mark_linked pool (Core.Datablock.hash db1);
  Core.Datablock_pool.mark_linked pool (Core.Datablock.hash db2);
  checki "none pending" 0 (Core.Datablock_pool.pending pool);
  (* db1 stays linked (kept), db2 returns to pending *)
  Core.Datablock_pool.relink_pending pool
    ~keep_linked:(Crypto.Hash.Set.singleton (Core.Datablock.hash db1))
    ~also_executed:(fun _ -> false);
  checki "db2 pending again" 1 (Core.Datablock_pool.pending pool)

let test_pool_prune () =
  let _, sk = keypair () in
  let pool = Core.Datablock_pool.create () in
  let db1 = mk_db ~counter:1 sk and db2 = mk_db ~counter:2 sk in
  ignore (Core.Datablock_pool.add pool db1);
  ignore (Core.Datablock_pool.add pool db2);
  Core.Datablock_pool.prune pool ~keep:(fun db -> db.Core.Datablock.header.counter > 1);
  checki "one left" 1 (Core.Datablock_pool.size pool);
  checkb "pruned gone" false (Core.Datablock_pool.mem pool (Core.Datablock.hash db1))

(* -- Quorum ----------------------------------------------------------------------- *)

let _tsetup, tkeys = Crypto.Threshold.keygen rng ~threshold:2 ~parties:5

let test_quorum_ready_once () =
  let q = Core.Quorum.create ~need:3 in
  let share i = Crypto.Threshold.sign_share tkeys.(i) "m" in
  (match Core.Quorum.add q (share 0) with
   | Core.Quorum.Pending 1 -> ()
   | _ -> Alcotest.fail "expected pending 1");
  (* duplicate member ignored *)
  (match Core.Quorum.add q (share 0) with
   | Core.Quorum.Pending 1 -> ()
   | _ -> Alcotest.fail "duplicate counted");
  ignore (Core.Quorum.add q (share 1));
  (match Core.Quorum.add q (share 2) with
   | Core.Quorum.Ready shares -> checki "released all" 3 (List.length shares)
   | _ -> Alcotest.fail "expected ready");
  (match Core.Quorum.add q (share 3) with
   | Core.Quorum.Already_done -> ()
   | _ -> Alcotest.fail "expected done");
  checkb "is_done" true (Core.Quorum.is_done q)

(* -- Ledger ----------------------------------------------------------------------- *)

let blk sn = Core.Bftblock.create ~view:1 ~sn ~links:(some_links 1)

let test_ledger_sequential_execution () =
  let l = Core.Ledger.create () in
  Core.Ledger.confirm l (blk 2);
  checkb "gap blocks execution" true (Core.Ledger.next_executable l = None);
  Core.Ledger.confirm l (blk 1);
  (match Core.Ledger.next_executable l with
   | Some b -> checki "sn 1 first" 1 b.Core.Bftblock.sn
   | None -> Alcotest.fail "expected executable");
  Core.Ledger.mark_executed l 1;
  Core.Ledger.mark_executed l 2;
  checki "executed" 2 (Core.Ledger.executed_up_to l);
  checki "confirmed count" 2 (Core.Ledger.confirmed_count l);
  checki "highest" 2 (Core.Ledger.highest_confirmed l)

let test_ledger_reconfirm_noop () =
  let l = Core.Ledger.create () in
  Core.Ledger.confirm l (blk 1);
  Core.Ledger.confirm l (blk 1);
  checki "counted once" 1 (Core.Ledger.confirmed_count l)

let test_ledger_fast_forward_and_prune () =
  let l = Core.Ledger.create () in
  Core.Ledger.confirm l (blk 1);
  Core.Ledger.confirm l (blk 2);
  Core.Ledger.fast_forward l 5;
  checki "jumped" 5 (Core.Ledger.executed_up_to l);
  Core.Ledger.fast_forward l 3;
  checki "never backwards" 5 (Core.Ledger.executed_up_to l);
  Core.Ledger.prune_below l 2;
  checkb "pruned" true (Core.Ledger.get l 1 = None)

let test_ledger_executed_range () =
  let l = Core.Ledger.create () in
  List.iter (fun sn -> Core.Ledger.confirm l (blk sn)) [ 1; 2; 3 ];
  List.iter (Core.Ledger.mark_executed l) [ 1; 2; 3 ];
  checki "range size" 2 (List.length (Core.Ledger.executed_range l ~from_:1))

(* -- Msg sizes & payloads ----------------------------------------------------------- *)

let test_msg_wire_sizes () =
  let _, sk = keypair () in
  let db = mk_db sk in
  let share = Crypto.Threshold.sign_share tkeys.(0) "m" in
  let vote =
    Core.Msg.Prepare_vote { view = 1; sn = 1; block_hash = Crypto.Hash.of_string "h"; share }
  in
  checkb "vote is small" true (Core.Msg.wire_size vote < 200);
  checkb "datablock carries payload" true
    (Core.Msg.wire_size (Core.Msg.Datablock_msg db) > 600);
  Alcotest.(check string) "datablock category" "datablock"
    (Core.Msg.category (Core.Msg.Datablock_msg db));
  checkb "datablock low priority" true
    (Core.Msg.priority (Core.Msg.Datablock_msg db) = Net.Nic.Low);
  checkb "vote high priority" true (Core.Msg.priority vote = Net.Nic.High)

let test_msg_payload_domain_separation () =
  let h = Crypto.Hash.of_string "x" in
  checkb "prepare != commit" true
    (Core.Msg.prepare_payload ~view:1 ~block_hash:h
     <> Core.Msg.commit_payload ~view:1 ~notar_digest:h);
  checkb "view binds" true
    (Core.Msg.prepare_payload ~view:1 ~block_hash:h
     <> Core.Msg.prepare_payload ~view:2 ~block_hash:h)

let test_msg_view_change_sizes_scale () =
  let _, sk = keypair () in
  let entry v sn =
    (v, Core.Bftblock.create ~view:v ~sn ~links:(some_links 10),
     (* a structurally valid aggregate: combine real shares *)
     match
       Crypto.Threshold.combine _tsetup "m"
         (List.init 3 (fun i -> Crypto.Threshold.sign_share tkeys.(i) "m"))
     with
     | Some a -> a
     | None -> Alcotest.fail "combine")
  in
  let vc entries =
    Core.Msg.
      { vc_new_view = 2;
        vc_sender = 0;
        vc_checkpoint = None;
        vc_entries = entries;
        vc_signature = Crypto.Signature.sign sk "x" }
  in
  let small = Core.Msg.wire_size (Core.Msg.View_change_msg (vc [ entry 1 1 ])) in
  let big = Core.Msg.wire_size (Core.Msg.View_change_msg (vc (List.init 8 (entry 1)))) in
  checkb "VC size grows with entries" true (big > 4 * small / 2);
  let nv k =
    Core.Msg.wire_size
      (Core.Msg.New_view_msg
         Core.Msg.
           { nv_view = 2;
             nv_sender = 0;
             nv_vcs = List.init k (fun _ -> vc [ entry 1 1 ]);
             nv_signature = Crypto.Signature.sign sk "y" })
  in
  checkb "NV size ~ linear in carried VCs" true (nv 6 > 5 * nv 1 / 2)

let test_silent_f_selection () =
  let cfg = Core.Config.make ~n:10 () in
  let byz = Core.Runner.silent_f cfg in
  checki "exactly f" 3 (List.length byz);
  let leader = Core.Config.leader_of_view cfg 1 in
  checkb "leader never Byzantine" false (List.mem_assoc leader byz);
  checkb "all silent" true
    (List.for_all (fun (_, s) -> s = Core.Byzantine.Silent) byz)

(* -- Scaling factor (§5.2 formulas) --------------------------------------------------- *)

let test_sf_formulas () =
  let beta = 32. in
  (* alpha = lambda (n-1): SF constant in n *)
  let sf n =
    Core.Scaling_factor.leopard_sf ~alpha_bytes:(Core.Scaling_factor.recommended_alpha_bytes ~lambda_coeff:64. ~n) ~beta ~n
  in
  (* SF converges to 2 + β/α; with α = λ(n-1) the bound is constant in n
     up to the vanishing β/α term. *)
  checkb "constant SF" true (Float.abs (sf 64 -. sf 600) < 0.01);
  Alcotest.(check (float 1e-9)) "hotstuff linear" 599. (Core.Scaling_factor.hotstuff_sf ~n:600);
  checkb "leopard CE near 1/2" true
    (Core.Scaling_factor.leopard_cost_effectiveness ~alpha_bytes:512_000. ~beta > 0.49);
  Alcotest.(check (float 1e-12)) "hotstuff CE 1/(n-1)" (1. /. 299.)
    (Core.Scaling_factor.hotstuff_cost_effectiveness ~n:300)

let test_sf_workloads () =
  let lambda = 12_800_000. (* 1e5 req/s * 128 B *) in
  let g1 = Core.Scaling_factor.leopard_leader_workload ~lambda ~alpha_bytes:512_000. ~beta:32. ~n:300 in
  let g2 =
    Core.Scaling_factor.leopard_nonleader_workload ~lambda ~alpha_bytes:512_000. ~beta:32. ~n:300
  in
  (* Eq. 2: leader ~ lambda (hash traffic negligible at large alpha) *)
  checkb "leader near lambda" true (g1 < 1.1 *. lambda);
  (* Eq. 3: non-leader ~ 2 lambda *)
  checkb "non-leader near 2 lambda" true (g2 > 1.8 *. lambda && g2 < 2.2 *. lambda);
  Alcotest.(check (float 1e-9)) "measured SF" 2.0
    (Core.Scaling_factor.measured_sf ~lambda_bytes_per_sec:10. ~replica_bytes_per_sec:[ 5.; 20.; 10. ])

let () =
  Alcotest.run "core-units"
    [ ( "config",
        [ Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "table 2" `Quick test_config_table2;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "leader rotation" `Quick test_config_leader_rotation ] );
      ( "datablock",
        [ Alcotest.test_case "create & verify" `Quick test_datablock_create_verify;
          Alcotest.test_case "wrong key" `Quick test_datablock_wrong_key_rejected;
          Alcotest.test_case "bad digest" `Quick test_datablock_bad_digest_rejected;
          Alcotest.test_case "hash binds content" `Quick test_datablock_hash_binds_content ] );
      ( "bftblock",
        [ Alcotest.test_case "view-independent hash" `Quick test_bftblock_hash_view_independent;
          Alcotest.test_case "hash binds links/sn" `Quick test_bftblock_hash_binds_links;
          Alcotest.test_case "dummy" `Quick test_bftblock_dummy ] );
      ( "mempool",
        [ Alcotest.test_case "fifo take" `Quick test_mempool_take_fifo;
          Alcotest.test_case "skips confirmed" `Quick test_mempool_skips_confirmed;
          Alcotest.test_case "oldest age" `Quick test_mempool_oldest_age;
          Alcotest.test_case "partial take" `Quick test_mempool_take_partial ] );
      ( "datablock pool",
        [ Alcotest.test_case "accept/duplicate/equivocation" `Quick
            test_pool_accept_duplicate_equivocation;
          Alcotest.test_case "pending & take" `Quick test_pool_pending_take;
          Alcotest.test_case "mark linked & missing" `Quick test_pool_mark_linked_and_missing;
          Alcotest.test_case "relink pending" `Quick test_pool_relink_pending;
          Alcotest.test_case "prune" `Quick test_pool_prune ] );
      ("quorum", [ Alcotest.test_case "ready once" `Quick test_quorum_ready_once ]);
      ( "ledger",
        [ Alcotest.test_case "sequential execution" `Quick test_ledger_sequential_execution;
          Alcotest.test_case "reconfirm noop" `Quick test_ledger_reconfirm_noop;
          Alcotest.test_case "fast forward & prune" `Quick test_ledger_fast_forward_and_prune;
          Alcotest.test_case "executed range" `Quick test_ledger_executed_range ] );
      ( "msg",
        [ Alcotest.test_case "wire sizes & channels" `Quick test_msg_wire_sizes;
          Alcotest.test_case "payload domain separation" `Quick
            test_msg_payload_domain_separation;
          Alcotest.test_case "view-change sizes scale" `Quick
            test_msg_view_change_sizes_scale ] );
      ("runner", [ Alcotest.test_case "silent_f selection" `Quick test_silent_f_selection ]);
      ( "scaling factor",
        [ Alcotest.test_case "formulas" `Quick test_sf_formulas;
          Alcotest.test_case "workloads" `Quick test_sf_workloads ] ) ]
