(* Cross-module property tests: randomized schedules against protocol
   invariants that the unit suites check only pointwise. *)

open Sim

(* -- Ledger: execution is a contiguous prefix under any confirm order -- *)

let prop_ledger_random_confirm_order =
  QCheck.Test.make ~name:"ledger executes a contiguous prefix" ~count:100
    QCheck.(pair int64 (int_range 1 40))
    (fun (seed, count) ->
      let rng = Rng.create seed in
      let l = Core.Ledger.create () in
      let sns = Array.init count (fun i -> i + 1) in
      Rng.shuffle rng sns;
      let executed_trace = ref [] in
      Array.for_all
        (fun sn ->
          Core.Ledger.confirm l
            (Core.Bftblock.create ~view:1 ~sn ~links:[ Crypto.Hash.of_string (string_of_int sn) ]);
          (* drain whatever became executable *)
          let rec drain () =
            match Core.Ledger.next_executable l with
            | Some b ->
              Core.Ledger.mark_executed l b.Core.Bftblock.sn;
              executed_trace := b.Core.Bftblock.sn :: !executed_trace;
              drain ()
            | None -> ()
          in
          drain ();
          (* invariant: executed serials are exactly 1..executed_up_to *)
          List.rev !executed_trace = List.init (Core.Ledger.executed_up_to l) (fun i -> i + 1))
        sns
      && Core.Ledger.executed_up_to l = count)

(* -- Mempool: take conserves requests and never returns confirmed ----- *)

let prop_mempool_conservation =
  QCheck.Test.make ~name:"mempool take conserves pending counts" ~count:100
    QCheck.(pair int64 (list (int_range 1 20)))
    (fun (seed, sizes) ->
      let rng = Rng.create seed in
      let m = Core.Mempool.create () in
      let total = ref 0 in
      List.iteri
        (fun i count ->
          let b = Workload.Request.make ~id:i ~count ~size_each:8 ~born:Sim_time.zero () in
          (* randomly pre-confirm some batches *)
          if Rng.bool rng then Workload.Request.mark_confirmed b else total := !total + count;
          Core.Mempool.add m b)
        sizes;
      let taken = ref 0 in
      let rec drain () =
        let got = Core.Mempool.take m ~target:7 in
        if got <> [] then begin
          List.iter
            (fun b ->
              if Workload.Request.is_confirmed b then raise Exit;
              taken := !taken + b.Workload.Request.count)
            got;
          drain ()
        end
      in
      (try
         drain ();
         !taken = !total && Core.Mempool.is_empty m
       with Exit -> false))

(* -- Quorum: Ready fires exactly once, at exactly [need] distinct ----- *)

let prop_quorum_exactly_once =
  QCheck.Test.make ~name:"quorum releases exactly once at need" ~count:100
    QCheck.(pair int64 (int_range 1 8))
    (fun (seed, f) ->
      let n = (3 * f) + 1 in
      let need = (2 * f) + 1 in
      let rng = Rng.create seed in
      let _, keys = Crypto.Threshold.keygen rng ~threshold:(2 * f) ~parties:n in
      let q = Core.Quorum.create ~need in
      (* a random stream of (possibly repeated) member shares *)
      let ready = ref 0 in
      let distinct = Hashtbl.create 8 in
      for _ = 1 to 4 * n do
        let i = Rng.int rng n in
        Hashtbl.replace distinct i ();
        match Core.Quorum.add q (Crypto.Threshold.sign_share keys.(i) "m") with
        | Core.Quorum.Ready shares ->
          incr ready;
          if List.length shares <> need then ready := 100
        | Core.Quorum.Pending c -> if c >= need then ready := 100
        | Core.Quorum.Already_done -> ()
      done;
      if Hashtbl.length distinct >= need then !ready = 1 else !ready = 0)

(* -- Engine: event count and clock are a pure function of the seed ---- *)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are replayable" ~count:20 QCheck.int64 (fun seed ->
      let run () =
        let e = Engine.create ~seed () in
        let rng = Rng.split (Engine.rng e) in
        let log = Buffer.create 64 in
        let rec tick i =
          if i < 50 then begin
            Buffer.add_string log (Printf.sprintf "%Ld;" (Engine.now e));
            ignore
              (Engine.schedule e
                 ~delay:(Sim_time.us (1 + Rng.int rng 1000))
                 (fun () -> tick (i + 1)))
          end
        in
        tick 0;
        Engine.run e;
        Buffer.contents log
      in
      String.equal (run ()) (run ()))

(* -- End-to-end: conservation of requests ------------------------------ *)

let prop_no_request_created_or_lost =
  QCheck.Test.make ~name:"confirmed <= offered and every batch counted once" ~count:6
    QCheck.int64
    (fun seed ->
      let cfg =
        Core.Config.make ~n:4 ~alpha:10 ~bft_size:2 ~payload:32
          ~datablock_timeout:(Sim_time.ms 200) ~proposal_timeout:(Sim_time.ms 200)
          ~fetch_grace:(Sim_time.ms 200) ~cost:Crypto.Cost_model.free ()
      in
      let sp =
        Core.Runner.spec ~cfg ~seed ~load:500. ~duration:(Sim_time.s 10)
          ~warmup:(Sim_time.s 1) ~load_until:(Sim_time.s 6) ()
      in
      let r = Core.Runner.run sp in
      r.Core.Runner.confirmed <= r.Core.Runner.offered
      && (not r.Core.Runner.all_confirmed) = (r.Core.Runner.confirmed < r.Core.Runner.offered)
      && r.Core.Runner.safety_ok)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "invariants"
    [ ( "cross-module properties",
        qsuite
          [ prop_ledger_random_confirm_order;
            prop_mempool_conservation;
            prop_quorum_exactly_once;
            prop_engine_deterministic;
            prop_no_request_created_or_lost ] ) ]
