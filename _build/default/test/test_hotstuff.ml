(* Tests for the chained-HotStuff baseline. *)

open Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let cfg ?(n = 4) ?(batch = 50) () =
  Hotstuff.Hs_config.make ~n ~batch_size:batch ~propose_timeout:(Sim_time.ms 20)
    ~cost:Crypto.Cost_model.free ()

let spec ?(load = 2000.) ?(duration = 8) ?silent cfg =
  Hotstuff.Hs_runner.spec ~cfg ~load ~duration:(Sim_time.s duration) ~warmup:(Sim_time.s 2)
    ~silent:(Option.value silent ~default:0) ()

let test_types () =
  let b = Hotstuff.Hs_types.make_block ~height:1 ~parent:Hotstuff.Hs_types.genesis_hash ~batch:[] in
  checki "req count" 0 b.Hotstuff.Hs_types.req_count;
  let b2 = Hotstuff.Hs_types.make_block ~height:2 ~parent:(Hotstuff.Hs_types.block_hash b) ~batch:[] in
  checkb "hash differs by height/parent" false
    (Crypto.Hash.equal (Hotstuff.Hs_types.block_hash b) (Hotstuff.Hs_types.block_hash b2));
  checkb "vote payload binds height" true
    (Hotstuff.Hs_types.vote_payload ~height:1 ~block_hash:(Hotstuff.Hs_types.block_hash b)
     <> Hotstuff.Hs_types.vote_payload ~height:2 ~block_hash:(Hotstuff.Hs_types.block_hash b))

let test_commit_progress () =
  let r = Hotstuff.Hs_runner.run (spec (cfg ())) in
  checkb "commits happen" true (r.Hotstuff.Hs_runner.committed_heights > 0);
  checkb "safety" true r.Hotstuff.Hs_runner.safety_ok;
  checkb "most offered confirmed" true
    (r.Hotstuff.Hs_runner.confirmed > r.Hotstuff.Hs_runner.offered * 8 / 10);
  checkb "latency recorded" true (Stats.Histogram.count r.Hotstuff.Hs_runner.latency > 0)

let test_silent_f_live () =
  let c = cfg ~n:7 () in
  let r = Hotstuff.Hs_runner.run (spec ~silent:c.Hotstuff.Hs_config.f (cfg ~n:7 ())) in
  checkb "live with f silent" true (r.Hotstuff.Hs_runner.committed_heights > 0);
  checkb "safety" true r.Hotstuff.Hs_runner.safety_ok

let test_leader_bottleneck_shape () =
  (* Doubling n roughly doubles the leader's egress per confirmed
     request — Eq. (1). Run both at the same saturating load on a slow
     link so the leader NIC is the binding constraint. *)
  let slow = Net.Network.{ default_link with out_bps = mbps 50.; in_bps = mbps 50. } in
  let run n =
    let c = Hotstuff.Hs_config.make ~n ~batch_size:200 ~cost:Crypto.Cost_model.free () in
    Hotstuff.Hs_runner.run
      (Hotstuff.Hs_runner.spec ~cfg:c ~link:slow ~load:50_000. ~duration:(Sim_time.s 10)
         ~warmup:(Sim_time.s 3) ~silent:0 ())
  in
  let r8 = run 8 and r16 = run 16 in
  checkb "throughput roughly halves when n doubles" true
    (r16.Hotstuff.Hs_runner.throughput < 0.75 *. r8.Hotstuff.Hs_runner.throughput);
  checkb "both saturated near link rate" true
    (r8.Hotstuff.Hs_runner.leader_bps > 0.5 *. Net.Network.mbps 50.)

let test_batch_size_amortizes () =
  (* Fig 7's mechanism: a tiny batch wastes round trips; a larger batch
     amortizes them. *)
  let run batch = (Hotstuff.Hs_runner.run (spec ~load:20_000. (cfg ~n:4 ~batch ()))).Hotstuff.Hs_runner.throughput in
  let small = run 10 and big = run 500 in
  checkb "bigger batch, higher throughput" true (big > small)

let () =
  Alcotest.run "hotstuff"
    [ ( "hotstuff",
        [ Alcotest.test_case "types" `Quick test_types;
          Alcotest.test_case "commit progress" `Quick test_commit_progress;
          Alcotest.test_case "f silent live" `Quick test_silent_f_live;
          Alcotest.test_case "leader bottleneck shape" `Slow test_leader_bottleneck_shape;
          Alcotest.test_case "batching amortizes" `Slow test_batch_size_amortizes ] ) ]
