(* Tests for Chained Leopard (datablock decoupling on chain-based BFT,
   the §4.3 generalization). *)

open Sim

let checkb = Alcotest.(check bool)

let cfg ?(n = 4) () =
  Hybrid.Chained_leopard.make_cfg ~n ~alpha:20 ~links_per_block:2
    ~datablock_timeout:(Sim_time.ms 100) ~proposal_timeout:(Sim_time.ms 100)
    ~cost:Crypto.Cost_model.free ()

let spec ?(load = 2000.) ?(duration = 8) ?silent cfg =
  Hybrid.Chained_leopard.spec ~cfg ~load ~duration:(Sim_time.s duration)
    ~warmup:(Sim_time.s 2) ?silent ()

let test_progress_and_safety () =
  let r = Hybrid.Chained_leopard.run (spec ~silent:0 (cfg ())) in
  checkb "commits" true (r.Hybrid.Chained_leopard.committed_heights > 0);
  checkb "safety" true r.Hybrid.Chained_leopard.safety_ok;
  checkb "most confirmed" true
    (r.Hybrid.Chained_leopard.confirmed > r.Hybrid.Chained_leopard.offered * 7 / 10);
  checkb "latency recorded" true (Stats.Histogram.count r.Hybrid.Chained_leopard.latency > 0)

let test_silent_f () =
  let r = Hybrid.Chained_leopard.run (spec (cfg ~n:7 ())) in
  checkb "live with f silent" true (r.Hybrid.Chained_leopard.committed_heights > 0);
  checkb "safety" true r.Hybrid.Chained_leopard.safety_ok

let test_leader_stays_light () =
  (* The point of the hybrid: the chain leader's traffic does not scale
     with the payload times n. Compare against plain HotStuff at the
     same load and scale. *)
  let n = 32 and load = 50_000. in
  let hybrid =
    Hybrid.Chained_leopard.run
      (Hybrid.Chained_leopard.spec
         ~cfg:(Hybrid.Chained_leopard.make_cfg ~n ~alpha:500 ~links_per_block:10
                 ~cost:Crypto.Cost_model.free ())
         ~load ~duration:(Sim_time.s 10) ~warmup:(Sim_time.s 3) ~silent:0 ())
  in
  let hotstuff =
    Hotstuff.Hs_runner.run
      (Hotstuff.Hs_runner.spec
         ~cfg:(Hotstuff.Hs_config.make ~n ~batch_size:800 ~cost:Crypto.Cost_model.free ())
         ~load ~duration:(Sim_time.s 10) ~warmup:(Sim_time.s 3) ~silent:0 ())
  in
  checkb "hybrid leader lighter than hotstuff leader" true
    (hybrid.Hybrid.Chained_leopard.leader_bps < hotstuff.Hotstuff.Hs_runner.leader_bps /. 2.);
  checkb "hybrid keeps throughput" true
    (hybrid.Hybrid.Chained_leopard.throughput >= hotstuff.Hotstuff.Hs_runner.throughput *. 0.8)

let prop_safety_random_seeds =
  QCheck.Test.make ~name:"safety under random seeds and silent subsets" ~count:6
    QCheck.(pair int64 (int_range 0 2))
    (fun (seed, silent) ->
      let r =
        Hybrid.Chained_leopard.run
          (Hybrid.Chained_leopard.spec ~cfg:(cfg ~n:7 ()) ~seed ~load:1500.
             ~duration:(Sim_time.s 8) ~warmup:(Sim_time.s 2) ~silent ())
      in
      r.Hybrid.Chained_leopard.safety_ok)

let test_deterministic () =
  let a = Hybrid.Chained_leopard.run (spec ~silent:0 (cfg ())) in
  let b = Hybrid.Chained_leopard.run (spec ~silent:0 (cfg ())) in
  Alcotest.(check int) "same confirmed" a.Hybrid.Chained_leopard.confirmed
    b.Hybrid.Chained_leopard.confirmed

let () =
  Alcotest.run "hybrid"
    [ ( "chained leopard",
        [ Alcotest.test_case "progress & safety" `Quick test_progress_and_safety;
          Alcotest.test_case "f silent" `Quick test_silent_f;
          Alcotest.test_case "leader stays light" `Slow test_leader_stays_light;
          Alcotest.test_case "deterministic" `Quick test_deterministic ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_safety_random_seeds ] ) ]
