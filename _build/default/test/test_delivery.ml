(* Tests for GF(256), Reed–Solomon coding, and the broadcast lab. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* -- GF(256) ----------------------------------------------------------- *)

let test_gf256_basics () =
  checki "add = xor" (0x57 lxor 0x83) (Crypto.Gf256.add 0x57 0x83);
  (* AES standard example: 0x57 * 0x83 = 0xc1 *)
  checki "mul vector" 0xc1 (Crypto.Gf256.mul 0x57 0x83);
  checki "mul by zero" 0 (Crypto.Gf256.mul 0 0x83);
  checki "mul by one" 0x83 (Crypto.Gf256.mul 1 0x83)

let prop_gf256_inverse =
  QCheck.Test.make ~name:"x * inv x = 1 in GF(256)" ~count:255
    QCheck.(int_range 1 255)
    (fun x -> Crypto.Gf256.mul x (Crypto.Gf256.inv x) = 1)

let prop_gf256_distributive =
  QCheck.Test.make ~name:"distributivity" ~count:300
    QCheck.(triple (int_range 0 255) (int_range 0 255) (int_range 0 255))
    (fun (a, b, c) ->
      Crypto.Gf256.mul a (Crypto.Gf256.add b c)
      = Crypto.Gf256.add (Crypto.Gf256.mul a b) (Crypto.Gf256.mul a c))

let prop_gf256_mul_assoc_comm =
  QCheck.Test.make ~name:"mul associative & commutative" ~count:300
    QCheck.(triple (int_range 0 255) (int_range 0 255) (int_range 0 255))
    (fun (a, b, c) ->
      Crypto.Gf256.mul a (Crypto.Gf256.mul b c) = Crypto.Gf256.mul (Crypto.Gf256.mul a b) c
      && Crypto.Gf256.mul a b = Crypto.Gf256.mul b a)

let test_gf256_pow () =
  checki "x^0" 1 (Crypto.Gf256.pow 0x57 0);
  checki "x^1" 0x57 (Crypto.Gf256.pow 0x57 1);
  checki "x^2" (Crypto.Gf256.mul 0x57 0x57) (Crypto.Gf256.pow 0x57 2);
  checki "0^3" 0 (Crypto.Gf256.pow 0 3)

(* -- Reed–Solomon ------------------------------------------------------- *)

let payload_of_size len = String.init len (fun i -> Char.chr ((i * 37 + 11) land 0xff))

let prop_rs_roundtrip_prefix =
  QCheck.Test.make ~name:"any k-subset decodes" ~count:60
    QCheck.(triple (int_range 1 8) (int_range 0 8) (int_range 1 200))
    (fun (k, extra, len) ->
      let n = k + extra in
      if n > 255 then true
      else begin
        let payload = payload_of_size len in
        let frags = Crypto.Reed_solomon.encode ~k ~n payload in
        (* drop the first [extra] fragments: decode from the tail *)
        let subset = List.filteri (fun i _ -> i >= extra) frags in
        match Crypto.Reed_solomon.decode ~k ~len subset with
        | Some s -> String.equal s payload
        | None -> false
      end)

let prop_rs_random_subset =
  QCheck.Test.make ~name:"random k-subset decodes" ~count:60 QCheck.int64 (fun seed ->
      let rng = Sim.Rng.create seed in
      let k = 4 and n = 12 in
      let payload = payload_of_size 100 in
      let frags = Array.of_list (Crypto.Reed_solomon.encode ~k ~n payload) in
      let indices = Sim.Rng.sample_without_replacement rng k n in
      let subset = List.map (fun i -> frags.(i)) indices in
      match Crypto.Reed_solomon.decode ~k ~len:100 subset with
      | Some s -> String.equal s payload
      | None -> false)

let test_rs_insufficient () =
  let payload = payload_of_size 64 in
  let frags = Crypto.Reed_solomon.encode ~k:4 ~n:8 payload in
  let subset = List.filteri (fun i _ -> i < 3) frags in
  checkb "3 of 4 insufficient" true (Crypto.Reed_solomon.decode ~k:4 ~len:64 subset = None);
  (* duplicates do not count *)
  let dup = List.hd frags in
  checkb "duplicates rejected" true
    (Crypto.Reed_solomon.decode ~k:4 ~len:64 (dup :: subset) <> None
     = (List.length (List.sort_uniq compare (List.map (fun f -> f.Crypto.Reed_solomon.index) (dup :: subset))) >= 4))

let test_rs_fragment_size () =
  checki "size" 25 (Crypto.Reed_solomon.fragment_size ~k:4 ~payload_len:100);
  checki "rounding" 26 (Crypto.Reed_solomon.fragment_size ~k:4 ~payload_len:101);
  let frags = Crypto.Reed_solomon.encode ~k:4 ~n:6 (payload_of_size 101) in
  List.iter
    (fun f -> checki "actual" 26 (Bytes.length f.Crypto.Reed_solomon.data))
    frags

let test_rs_expansion_factor () =
  (* (n, k) with n = 2k: total coded bytes = 2x the payload (c = 2). *)
  let payload = payload_of_size 1000 in
  let frags = Crypto.Reed_solomon.encode ~k:10 ~n:20 payload in
  let total = List.fold_left (fun a f -> a + Bytes.length f.Crypto.Reed_solomon.data) 0 frags in
  checki "c = 2 expansion" 2000 total

(* -- Broadcast lab ------------------------------------------------------- *)

let payload = payload_of_size 8192

let fast_link =
  Net.Network.{ out_bps = 8e8; in_bps = 8e8; prop_delay = Sim.Sim_time.ms 1; jitter = 0L; lanes = 1 }

let test_lab_direct () =
  let r =
    Delivery.Broadcast_lab.run ~link:fast_link ~n:16 ~payload ~byzantine:[] Delivery.Broadcast_lab.Direct
  in
  checki "all delivered" r.Delivery.Broadcast_lab.honest r.Delivery.Broadcast_lab.delivered;
  (* source ships (n-1) x payload; replicas ship nothing *)
  checkb "source egress ~ 15x payload" true
    (r.Delivery.Broadcast_lab.source_egress >= 15 * 8192);
  checki "replicas silent" 0 r.Delivery.Broadcast_lab.max_replica_egress

let test_lab_tree_honest () =
  let r =
    Delivery.Broadcast_lab.run ~link:fast_link ~n:31 ~payload ~byzantine:[]
      (Delivery.Broadcast_lab.Tree { fanout = 2 })
  in
  checki "all delivered" r.Delivery.Broadcast_lab.honest r.Delivery.Broadcast_lab.delivered;
  checkb "source egress only fanout x payload" true
    (r.Delivery.Broadcast_lab.source_egress < 3 * 8300)

let test_lab_tree_byzantine_severs () =
  (* Node 1 (an inner node) is Byzantine: its whole subtree starves. *)
  let r =
    Delivery.Broadcast_lab.run ~link:fast_link ~n:31 ~payload ~byzantine:[ 1 ]
      (Delivery.Broadcast_lab.Tree { fanout = 2 })
  in
  checkb "coverage collapses" true
    (r.Delivery.Broadcast_lab.delivered < r.Delivery.Broadcast_lab.honest);
  checkb "incomplete" true (r.Delivery.Broadcast_lab.completion = None)

let test_lab_erasure_honest () =
  let r =
    Delivery.Broadcast_lab.run ~link:fast_link ~n:13 ~payload ~byzantine:[]
      (Delivery.Broadcast_lab.Erasure { k = 6 })
  in
  checki "all delivered" r.Delivery.Broadcast_lab.honest r.Delivery.Broadcast_lab.delivered;
  checki "no decode failures" 0 r.Delivery.Broadcast_lab.decode_failures;
  (* the source ships ~n/k x payload instead of (n-1) x *)
  checkb "source cheap vs direct" true
    (r.Delivery.Broadcast_lab.source_egress < 4 * 8192)

let test_lab_erasure_tolerates_faults () =
  (* 4 of 13 replicas Byzantine (drop their fragment): the remaining
     honest rebroadcasts still give everyone >= k = 6 fragments. *)
  let r =
    Delivery.Broadcast_lab.run ~link:fast_link ~n:13 ~payload ~byzantine:[ 3; 5; 7; 9 ]
      (Delivery.Broadcast_lab.Erasure { k = 6 })
  in
  checki "all honest delivered" r.Delivery.Broadcast_lab.honest r.Delivery.Broadcast_lab.delivered

let test_lab_erasure_balances_load () =
  let direct =
    Delivery.Broadcast_lab.run ~link:fast_link ~n:16 ~payload ~byzantine:[] Delivery.Broadcast_lab.Direct
  in
  let erasure =
    Delivery.Broadcast_lab.run ~link:fast_link ~n:16 ~payload ~byzantine:[]
      (Delivery.Broadcast_lab.Erasure { k = 7 })
  in
  checkb "erasure source much cheaper than direct" true
    (erasure.Delivery.Broadcast_lab.source_egress * 3
     < direct.Delivery.Broadcast_lab.source_egress);
  (* ... but total traffic is higher than the payload-optimal n x payload
     (the c > 1 overhead the paper points out) *)
  checkb "erasure total exceeds direct total" true
    (erasure.Delivery.Broadcast_lab.total_bytes > direct.Delivery.Broadcast_lab.total_bytes)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "delivery"
    [ ( "gf256",
        [ Alcotest.test_case "basics" `Quick test_gf256_basics;
          Alcotest.test_case "pow" `Quick test_gf256_pow ]
        @ qsuite [ prop_gf256_inverse; prop_gf256_distributive; prop_gf256_mul_assoc_comm ] );
      ( "reed-solomon",
        [ Alcotest.test_case "insufficient" `Quick test_rs_insufficient;
          Alcotest.test_case "fragment size" `Quick test_rs_fragment_size;
          Alcotest.test_case "expansion factor" `Quick test_rs_expansion_factor ]
        @ qsuite [ prop_rs_roundtrip_prefix; prop_rs_random_subset ] );
      ( "broadcast lab",
        [ Alcotest.test_case "direct" `Quick test_lab_direct;
          Alcotest.test_case "tree honest" `Quick test_lab_tree_honest;
          Alcotest.test_case "tree severed by Byzantine" `Quick test_lab_tree_byzantine_severs;
          Alcotest.test_case "erasure honest" `Quick test_lab_erasure_honest;
          Alcotest.test_case "erasure tolerates faults" `Quick test_lab_erasure_tolerates_faults;
          Alcotest.test_case "erasure balances load" `Quick test_lab_erasure_balances_load ] ) ]
