# Convenience entry points; everything is plain dune underneath.

.PHONY: check ci build test bench bench-fast bench-micro bench-macro clean

check: ## build + full test suite (tier-1 gate)
	dune build && dune runtest

ci: ## the full gate: build, tests, perf regressions, TCP smoke test
	dune build && dune runtest
	dune exec bench/main.exe -- --only micro --fast --check-regressions
	dune exec bench/main.exe -- --only macro --fast --check-regressions
	dune exec bin/leopard_cli.exe -- local-cluster -n 4 --load 2000 --duration 3 \
	  --min-confirmed 1000 --drain 10

build:
	dune build

test:
	dune runtest

bench: ## every experiment (slow)
	dune exec bench/main.exe

bench-fast: ## micro benches only, reduced quota, compare vs baseline
	dune exec bench/main.exe -- --only micro --fast --check-regressions

bench-micro: ## full micro benches, rewrite BENCH_micro.json
	dune exec bench/main.exe -- --only micro

bench-macro: ## full-protocol simulator scaling bench, rewrite BENCH_sim.json
	dune exec bench/main.exe -- --only macro

clean:
	dune clean
