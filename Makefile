# Convenience entry points; everything is plain dune underneath.

.PHONY: check ci fmt fmt-check chaos build test bench bench-fast bench-micro bench-macro bench-net bench-verify bench-store bench-trend clean

check: ## build + full test suite (tier-1 gate)
	dune build && dune runtest

ci: ## the full gate: fmt, build, tests, perf regressions, TCP smoke, chaos corpus
	bash scripts/ci.sh

fmt: ## rewrite sources with the pinned ocamlformat (no-op if not installed)
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping (CI enforces the pinned version)"; \
	fi

fmt-check: ## fail if sources disagree with the pinned ocamlformat
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping (CI enforces the pinned version)"; \
	fi

chaos: ## deterministic fault-injection corpus on both planes
	dune exec bin/leopard_cli.exe -- chaos --trace-dir _chaos

build:
	dune build

test:
	dune runtest

bench: ## every experiment (slow)
	dune exec bench/main.exe

bench-fast: ## micro benches only, reduced quota, compare vs baseline
	dune exec bench/main.exe -- --only micro --fast --check-regressions

bench-micro: ## full micro benches, rewrite BENCH_micro.json
	dune exec bench/main.exe -- --only micro

bench-macro: ## full-protocol simulator scaling bench, rewrite BENCH_sim.json
	dune exec bench/main.exe -- --only macro

bench-net: ## transport data-plane bench over loopback TCP, rewrite BENCH_net.json
	dune exec bench/main.exe -- --only net

bench-verify: ## verification pool vs inline bench, rewrite BENCH_verify.json
	dune exec bench/main.exe -- --only verify

bench-store: ## WAL append/recovery bench, rewrite BENCH_store.json
	dune exec bench/main.exe -- --only store

bench-trend: ## one-line delta per bench id, working tree vs committed baselines
	bash scripts/bench_trend.sh

clean:
	dune clean
