# Convenience entry points; everything is plain dune underneath.

.PHONY: check build test bench bench-fast bench-micro bench-macro clean

check: ## build + full test suite (tier-1 gate)
	dune build && dune runtest

build:
	dune build

test:
	dune runtest

bench: ## every experiment (slow)
	dune exec bench/main.exe

bench-fast: ## micro benches only, reduced quota, compare vs baseline
	dune exec bench/main.exe -- --only micro --fast --check-regressions

bench-micro: ## full micro benches, rewrite BENCH_micro.json
	dune exec bench/main.exe -- --only micro

bench-macro: ## full-protocol simulator scaling bench, rewrite BENCH_sim.json
	dune exec bench/main.exe -- --only macro

clean:
	dune clean
